package serve

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"blocktri/internal/blocktri"
	"blocktri/internal/comm"
	"blocktri/internal/mat"
)

func testMatrix(seed int64, n, m int) *blocktri.Matrix {
	return blocktri.RandomDiagDominant(n, m, rand.New(rand.NewSource(seed)))
}

func testRHS(a *blocktri.Matrix, seed int64, cols int) *mat.Matrix {
	return a.RandomRHS(cols, rand.New(rand.NewSource(seed)))
}

func checkSolution(t *testing.T, a *blocktri.Matrix, res *Result, b *mat.Matrix) {
	t.Helper()
	if res == nil || res.X == nil {
		t.Fatal("nil result")
	}
	if r := a.RelResidual(res.X, b); r > 1e-7 {
		t.Fatalf("relative residual %g too large", r)
	}
}

// TestSolveColdThenWarm: the first solve factors, the second reuses the
// cached factor — the amortization the service exists for.
func TestSolveColdThenWarm(t *testing.T) {
	srv := New(Config{P: 2, Seed: 1})
	defer srv.Close()
	a := testMatrix(3, 16, 3)
	b := testRHS(a, 4, 2)

	res, err := srv.Submit(context.Background(), Job{Tenant: "t1", Matrix: a, B: b})
	if err != nil {
		t.Fatalf("cold submit: %v", err)
	}
	if res.Warm {
		t.Fatal("first solve reported a warm factor")
	}
	checkSolution(t, a, res, b)

	res, err = srv.Submit(context.Background(), Job{Tenant: "t2", Matrix: a.Clone(), B: b})
	if err != nil {
		t.Fatalf("warm submit: %v", err)
	}
	if !res.Warm {
		t.Fatal("second solve of an identical matrix (different tenant) missed the cache")
	}
	checkSolution(t, a, res, b)

	st := srv.Stats()
	if st.Factorizations != 1 || st.FactorHits != 1 {
		t.Fatalf("stats %+v: want exactly one factorization and one hit", st)
	}
}

// TestRegisterAndSolveByID: registered matrices are addressable by id, and
// an unknown id is a typed error.
func TestRegisterAndSolveByID(t *testing.T) {
	srv := New(Config{P: 2})
	defer srv.Close()
	a := testMatrix(5, 12, 2)
	if err := srv.Register("poisson", a); err != nil {
		t.Fatalf("register: %v", err)
	}
	b := testRHS(a, 6, 1)
	res, err := srv.Submit(context.Background(), Job{MatrixID: "poisson", B: b})
	if err != nil {
		t.Fatalf("submit by id: %v", err)
	}
	checkSolution(t, a, res, b)

	if _, err := srv.Submit(context.Background(), Job{MatrixID: "nope", B: b}); !errors.Is(err, ErrUnknownMatrix) {
		t.Fatalf("unknown id error = %v, want ErrUnknownMatrix", err)
	}
	if _, err := srv.Submit(context.Background(), Job{MatrixID: "poisson", B: mat.New(3, 1)}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("shape mismatch error = %v, want ErrBadRequest", err)
	}
	if _, err := srv.Submit(context.Background(), Job{Tenant: "x", B: b}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("no matrix error = %v, want ErrBadRequest", err)
	}
}

// TestConcurrentSameMatrixSingleFactor: a burst of concurrent submits for
// one uncached matrix performs exactly one factorization — requests are
// deduped by the cache and coalesced into panels behind it.
func TestConcurrentSameMatrixSingleFactor(t *testing.T) {
	srv := New(Config{P: 2, Seed: 2})
	defer srv.Close()
	a := testMatrix(7, 16, 2)
	const jobs = 12
	var wg sync.WaitGroup
	errs := make([]error, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b := testRHS(a, int64(100+i), 1)
			res, err := srv.Submit(context.Background(), Job{Tenant: "t", Matrix: a, B: b})
			if err == nil {
				if r := a.RelResidual(res.X, b); r > 1e-7 {
					err = errors.New("bad residual")
				}
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
	if st := srv.Stats(); st.Factorizations != 1 {
		t.Fatalf("%d factorizations for one matrix under concurrency, want 1 (stats %+v)", st.Factorizations, st)
	}
}

// TestCoalescing: jobs for the same matrix queued behind a busy worker are
// solved as one multi-RHS panel.
func TestCoalescing(t *testing.T) {
	srv := New(Config{P: 2, MaxPanel: 64})
	defer srv.Close()
	gate := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	srv.testServeHook = func([]*task) {
		once.Do(func() {
			close(entered)
			<-gate
		})
	}
	a := testMatrix(9, 16, 2)
	const jobs = 6
	var wg sync.WaitGroup
	results := make([]*Result, jobs)
	errs := make([]error, jobs)
	bs := make([]*mat.Matrix, jobs)
	for i := 0; i < jobs; i++ {
		bs[i] = testRHS(a, int64(200+i), 2)
	}
	submit := func(i int) {
		defer wg.Done()
		results[i], errs[i] = srv.Submit(context.Background(), Job{Tenant: "t", Matrix: a, B: bs[i]})
	}
	wg.Add(1)
	go submit(0)
	<-entered // worker is parked on job 0; the rest will queue up
	for i := 1; i < jobs; i++ {
		wg.Add(1)
		go submit(i)
	}
	waitQueued(t, srv, jobs-1)
	close(gate)
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("job %d: %v", i, errs[i])
		}
		checkSolution(t, a, results[i], bs[i])
	}
	coalesced := 0
	for _, r := range results {
		if r.Coalesced > 1 {
			coalesced++
		}
	}
	if coalesced == 0 {
		t.Fatalf("no job rode a coalesced panel (stats %+v)", srv.Stats())
	}
	if st := srv.Stats(); st.CoalescedJobs < 1 || st.Factorizations != 1 {
		t.Fatalf("stats %+v: want coalesced jobs and a single factorization", st)
	}
}

// waitQueued polls until the admission queue holds want jobs.
func waitQueued(t *testing.T, srv *Server, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if srv.Stats().Queued >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached %d (stats %+v)", want, srv.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestOverloadShedding: beyond QueueDepth, submits are shed with a typed
// *OverloadError carrying a retry-after hint — and the shed request never
// disturbs queued or cached work.
func TestOverloadShedding(t *testing.T) {
	srv := New(Config{P: 2, QueueDepth: 1})
	defer srv.Close()
	gate := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	srv.testServeHook = func([]*task) {
		once.Do(func() { close(entered) })
		<-gate
	}
	a := testMatrix(11, 12, 2)
	b := testRHS(a, 12, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := srv.Submit(context.Background(), Job{Tenant: "a", Matrix: a, B: b}); err != nil {
			t.Errorf("job 0: %v", err)
		}
	}()
	<-entered // worker parked; queue is empty again
	a2 := testMatrix(13, 12, 2)
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := srv.Submit(context.Background(), Job{Tenant: "b", Matrix: a2, B: b}); err != nil {
			t.Errorf("job 1: %v", err)
		}
	}()
	waitQueued(t, srv, 1) // job 1 fills the queue to its bound
	_, err := srv.Submit(context.Background(), Job{Tenant: "c", Matrix: testMatrix(15, 12, 2), B: b})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-bound submit error = %v, want ErrOverloaded", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.RetryAfter <= 0 {
		t.Fatalf("shed error %v carries no usable retry-after", err)
	}
	close(gate)
	wg.Wait()
	if st := srv.Stats(); st.Shed != 1 || st.Solved != 2 {
		t.Fatalf("stats %+v: want 1 shed, 2 solved", st)
	}
}

// TestTenantFairness: with tenant A's flood queued ahead of tenant B's few
// jobs, round-robin draining interleaves them — B finishes long before A's
// tail instead of waiting behind the whole flood.
func TestTenantFairness(t *testing.T) {
	srv := New(Config{P: 2})
	defer srv.Close()
	gate := make(chan struct{})
	entered := make(chan struct{})
	var mu sync.Mutex
	var served []string
	first := true
	srv.testServeHook = func(batch []*task) {
		mu.Lock()
		if first {
			first = false
			mu.Unlock()
			close(entered)
			<-gate
			return
		}
		served = append(served, batch[0].tenant)
		mu.Unlock()
	}
	// Distinct matrices per job so coalescing cannot merge the queue.
	const aJobs, bJobs = 6, 3
	var wg sync.WaitGroup
	submit := func(tenant string, seed int64) {
		defer wg.Done()
		a := testMatrix(seed, 8, 2)
		b := testRHS(a, seed+1000, 1)
		if _, err := srv.Submit(context.Background(), Job{Tenant: tenant, Matrix: a, B: b}); err != nil {
			t.Errorf("tenant %s: %v", tenant, err)
		}
	}
	wg.Add(1)
	go submit("A", 500)
	<-entered
	for i := 0; i < aJobs; i++ {
		wg.Add(1)
		go submit("A", int64(600+i))
	}
	waitQueued(t, srv, aJobs)
	for i := 0; i < bJobs; i++ {
		wg.Add(1)
		go submit("B", int64(700+i))
	}
	waitQueued(t, srv, aJobs+bJobs)
	close(gate)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(served) != aJobs+bJobs {
		t.Fatalf("served %d batches, want %d (%v)", len(served), aJobs+bJobs, served)
	}
	// All of B's jobs must be drained within the first 2*bJobs pops: strict
	// round-robin alternates A and B while both have queued work.
	bSeen := 0
	for i := 0; i < 2*bJobs && i < len(served); i++ {
		if served[i] == "B" {
			bSeen++
		}
	}
	if bSeen != bJobs {
		t.Fatalf("only %d/%d of tenant B's jobs served in the first %d slots; drain order %v is not fair",
			bSeen, bJobs, 2*bJobs, served)
	}
}

// TestDeadlineWhileQueued: a job whose deadline passes while it waits
// behind a stuck worker fails with ErrDeadlineExceeded, and the worker
// skips its corpse instead of solving for nobody.
func TestDeadlineWhileQueued(t *testing.T) {
	srv := New(Config{P: 2})
	defer srv.Close()
	gate := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	srv.testServeHook = func([]*task) {
		once.Do(func() { close(entered) })
		<-gate
	}
	a := testMatrix(17, 12, 2)
	b := testRHS(a, 18, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = srv.Submit(context.Background(), Job{Tenant: "a", Matrix: a, B: b})
	}()
	<-entered
	start := time.Now()
	_, err := srv.Submit(context.Background(), Job{
		Tenant: "b", Matrix: testMatrix(19, 12, 2), B: b,
		Deadline: time.Now().Add(50 * time.Millisecond),
	})
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("queued-past-deadline error = %v, want ErrDeadlineExceeded", err)
	}
	if e := time.Since(start); e > 5*time.Second {
		t.Fatalf("deadline enforcement took %v", e)
	}
	close(gate)
	wg.Wait()
}

// TestSubmitCancel: canceling the submitting context returns ErrCanceled.
func TestSubmitCancel(t *testing.T) {
	srv := New(Config{P: 2})
	defer srv.Close()
	gate := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	srv.testServeHook = func([]*task) {
		once.Do(func() { close(entered) })
		<-gate
	}
	a := testMatrix(21, 12, 2)
	b := testRHS(a, 22, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = srv.Submit(context.Background(), Job{Tenant: "a", Matrix: a, B: b})
	}()
	<-entered
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(20 * time.Millisecond); cancel() }()
	_, err := srv.Submit(ctx, Job{Tenant: "b", Matrix: testMatrix(23, 12, 2), B: b})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled submit error = %v, want ErrCanceled", err)
	}
	close(gate)
	wg.Wait()
}

// TestRetryAfterInjectedCrash: a rank crash during the first factor run is
// retried and the job still completes correctly.
func TestRetryAfterInjectedCrash(t *testing.T) {
	srv := New(Config{
		P: 2, Seed: 5, MaxRetries: 3,
		FaultPlan: &comm.FaultPlan{Seed: 41, CrashRank: 1, CrashAtOp: 1},
	})
	defer srv.Close()
	a := testMatrix(25, 16, 2)
	b := testRHS(a, 26, 2)
	res, err := srv.Submit(context.Background(), Job{Tenant: "t", Matrix: a, B: b})
	if err != nil {
		t.Fatalf("submit under crash plan: %v", err)
	}
	checkSolution(t, a, res, b)
	if res.Retries == 0 && srv.Stats().Retries == 0 {
		t.Fatalf("crash plan did not exercise the retry path (stats %+v)", srv.Stats())
	}
}

// TestBoostedDegradation: a matrix whose super-diagonal block is exactly
// singular cannot be ARD-factored; the service degrades through
// core.SolveBoosted and still answers, without caching the failed factor.
func TestBoostedDegradation(t *testing.T) {
	srv := New(Config{P: 2, RefineIters: 8})
	defer srv.Close()
	a := testMatrix(27, 8, 2)
	a.Upper[1].Zero() // recursive doubling cannot invert this block
	b := testRHS(a, 28, 1)
	res, err := srv.Submit(context.Background(), Job{Tenant: "t", Matrix: a, B: b})
	if err != nil {
		t.Fatalf("submit of boost-requiring matrix: %v", err)
	}
	if !res.Boosted || !res.Boost.Boosted {
		t.Fatalf("result %+v did not go through the boost ladder", res)
	}
	if r := a.RelResidual(res.X, b); r > 1e-6 {
		t.Fatalf("boosted residual %g too large (report %+v)", r, res.Boost)
	}
	key, err := MatrixKey(a)
	if err != nil {
		t.Fatal(err)
	}
	if srv.FactorResident(key) {
		t.Fatal("a factorization that failed must not be cached")
	}
	if st := srv.Stats(); st.Boosted != 1 {
		t.Fatalf("stats %+v: want Boosted=1", st)
	}
}

// TestCircuitBreaker: repeated factor failures open the matrix's breaker;
// further submits are rejected with *CircuitError until the cooldown, after
// which a successful probe closes it again.
func TestCircuitBreaker(t *testing.T) {
	srv := New(Config{P: 2, BreakerThreshold: 3, BreakerCooldown: 80 * time.Millisecond})
	defer srv.Close()
	a := testMatrix(29, 12, 2)
	b := testRHS(a, 30, 1)
	key, err := MatrixKey(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		srv.breakerFail(key)
	}
	_, err = srv.Submit(context.Background(), Job{Tenant: "t", Matrix: a, B: b})
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open-breaker submit error = %v, want ErrCircuitOpen", err)
	}
	var ce *CircuitError
	if !errors.As(err, &ce) || ce.Failures != 3 || ce.RetryAfter <= 0 {
		t.Fatalf("circuit error %v lacks failure count or cooldown", err)
	}
	time.Sleep(100 * time.Millisecond) // cooldown expires; probe admitted
	res, err := srv.Submit(context.Background(), Job{Tenant: "t", Matrix: a, B: b})
	if err != nil {
		t.Fatalf("post-cooldown probe: %v", err)
	}
	checkSolution(t, a, res, b)
	if err := srv.breakerCheck(key); err != nil {
		t.Fatalf("breaker still open after a successful probe: %v", err)
	}
	if st := srv.Stats(); st.BreakerOpens != 1 {
		t.Fatalf("stats %+v: want BreakerOpens=1", st)
	}
}

// TestCloseFailsQueuedJobs: Close drains the service; jobs still queued get
// ErrClosed, later submits get ErrClosed, and worker worlds shut down.
func TestCloseFailsQueuedJobs(t *testing.T) {
	srv := New(Config{P: 2})
	gate := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	srv.testServeHook = func([]*task) {
		once.Do(func() { close(entered) })
		<-gate
	}
	a := testMatrix(31, 12, 2)
	b := testRHS(a, 32, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = srv.Submit(context.Background(), Job{Tenant: "a", Matrix: a, B: b})
	}()
	<-entered
	queuedErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := srv.Submit(context.Background(), Job{Tenant: "b", Matrix: testMatrix(33, 12, 2), B: b})
		queuedErr <- err
	}()
	waitQueued(t, srv, 1)
	go func() { time.Sleep(10 * time.Millisecond); close(gate) }()
	srv.Close()
	if err := <-queuedErr; !errors.Is(err, ErrClosed) {
		t.Fatalf("queued job at shutdown got %v, want ErrClosed", err)
	}
	if _, err := srv.Submit(context.Background(), Job{Tenant: "c", Matrix: a, B: b}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close submit got %v, want ErrClosed", err)
	}
	wg.Wait()
}
