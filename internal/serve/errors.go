// Typed error vocabulary for the serve layer. Every way a request can fail
// maps to one of these sentinels (match with errors.Is); the structured
// variants carry retry hints so clients can implement honest backoff
// instead of hammering an overloaded service.
package serve

import (
	"errors"
	"fmt"
	"time"
)

var (
	// ErrOverloaded reports a request shed at admission: the bounded queue
	// is full. The concrete error is an *OverloadError with a RetryAfter
	// hint. Shedding never touches the factor cache — a shed request cannot
	// evict or delay another tenant's work.
	ErrOverloaded = errors.New("serve: overloaded")

	// ErrCircuitOpen reports a request rejected because its matrix tripped
	// the factor circuit breaker (repeated factor failures). The concrete
	// error is a *CircuitError with the cooldown remaining.
	ErrCircuitOpen = errors.New("serve: circuit open")

	// ErrDeadlineExceeded reports a request that did not complete before
	// its deadline. The solve it rode in is aborted through the comm
	// layer's run context, so the ranks unwind instead of computing a
	// result nobody is waiting for.
	ErrDeadlineExceeded = errors.New("serve: deadline exceeded")

	// ErrCanceled reports a request whose submitting context was canceled
	// before a result was produced.
	ErrCanceled = errors.New("serve: canceled")

	// ErrUnknownMatrix reports a job referencing a MatrixID that was never
	// registered.
	ErrUnknownMatrix = errors.New("serve: unknown matrix id")

	// ErrBadRequest reports a structurally invalid job: no right-hand side,
	// neither matrix nor id, or a shape mismatch.
	ErrBadRequest = errors.New("serve: bad request")

	// ErrClosed reports a job submitted to (or still queued in) a server
	// that has shut down.
	ErrClosed = errors.New("serve: server closed")
)

// OverloadError is the concrete shed error: the admission queue was full.
type OverloadError struct {
	// Queued is the queue depth observed at admission time.
	Queued int
	// RetryAfter estimates when capacity will free up, derived from the
	// queue depth and the recent per-job service time. It is a hint, not a
	// promise.
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("serve: overloaded (%d queued, retry after %v)", e.Queued, e.RetryAfter)
}

// Is makes errors.Is(err, ErrOverloaded) match.
func (e *OverloadError) Is(target error) bool { return target == ErrOverloaded }

// CircuitError is the concrete circuit-breaker rejection.
type CircuitError struct {
	// Key is the matrix content key whose breaker is open.
	Key string
	// Failures is the consecutive factor-failure count that opened it.
	Failures int
	// RetryAfter is the cooldown remaining before a probe is admitted.
	RetryAfter time.Duration
}

func (e *CircuitError) Error() string {
	return fmt.Sprintf("serve: circuit open for matrix %s after %d factor failures (retry after %v)",
		e.Key, e.Failures, e.RetryAfter)
}

// Is makes errors.Is(err, ErrCircuitOpen) match.
func (e *CircuitError) Is(target error) bool { return target == ErrCircuitOpen }
