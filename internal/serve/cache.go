// The factor cache: a content-hash-keyed LRU of ARD factorizations with
// byte-size accounting, pin counts, and singleflight deduplication.
//
// Keys are content hashes of the matrix, so two tenants submitting the same
// matrix under different ids share one factorization — the amortization the
// whole service exists to exploit. Entries are pinned while a factorization
// is in flight or a solve is using them; eviction walks the LRU tail and
// never touches a pinned entry, so cache pressure (or a flood of shed
// requests) can never yank a factor out from under another tenant's
// in-flight work. Failed factorizations are not cached — the circuit
// breaker, not the cache, remembers repeat offenders.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"blocktri/internal/blocktri"
	"blocktri/internal/core"
)

// MatrixKey returns the content key of a block tridiagonal matrix: a
// 128-bit hex digest over its canonical binary serialization. Equal
// matrices hash equal regardless of how they were built.
func MatrixKey(a *blocktri.Matrix) (string, error) {
	h := sha256.New()
	if _, err := a.WriteTo(h); err != nil {
		return "", fmt.Errorf("serve: hashing matrix: %w", err)
	}
	return hex.EncodeToString(h.Sum(nil)[:16]), nil
}

// matrixBytes is the retained payload size of a block tridiagonal matrix.
func matrixBytes(a *blocktri.Matrix) int64 {
	blocks := int64(3*a.N - 2)
	return 8 * blocks * int64(a.M) * int64(a.M)
}

// factorEntry is one cached factorization. ready is closed when the entry
// leaves the in-flight state; waiters then read ard/err. pins counts
// in-flight factorizations plus solves currently using the entry; a pinned
// entry is never evicted.
type factorEntry struct {
	key   string
	a     *blocktri.Matrix
	ard   *core.ARD
	bytes int64
	err   error
	ready chan struct{}

	pins int
	// LRU intrusive list links; nil for in-flight entries (they are not in
	// the list until the factorization lands).
	prev, next *factorEntry
	inLRU      bool
}

// cacheStats are the cache's own counters, reported inside Stats.
type cacheStats struct {
	Hits          int64 // request found a ready factor
	Misses        int64 // request triggered a factorization
	InflightJoins int64 // request piggybacked on a factorization in flight
	Evictions     int64
}

// factorCache is the LRU. head is most recently used, tail next to evict.
type factorCache struct {
	mu       sync.Mutex
	capBytes int64
	bytes    int64
	entries  map[string]*factorEntry
	head     *factorEntry
	tail     *factorEntry
	stats    cacheStats
}

func newFactorCache(capBytes int64) *factorCache {
	return &factorCache{capBytes: capBytes, entries: make(map[string]*factorEntry)}
}

// acquire returns the entry for key with one pin held by the caller, who
// must release it after the solve. Exactly one concurrent caller runs
// build (without the cache lock); everyone else for the same key waits on
// the same entry — the singleflight guarantee. warm reports whether the
// factor was already resident (true) as opposed to built or awaited now.
func (fc *factorCache) acquire(key string, build func() (*core.ARD, *blocktri.Matrix, int64, error)) (e *factorEntry, warm bool, err error) {
	fc.mu.Lock()
	if e = fc.entries[key]; e != nil {
		e.pins++
		inflight := !isReady(e.ready)
		if inflight {
			fc.stats.InflightJoins++
		} else {
			fc.stats.Hits++
			fc.touch(e)
		}
		fc.mu.Unlock()
		<-e.ready
		if e.err != nil {
			fc.release(e)
			return nil, false, e.err
		}
		return e, !inflight, nil
	}

	e = &factorEntry{key: key, pins: 1, ready: make(chan struct{})}
	fc.entries[key] = e
	fc.stats.Misses++
	fc.mu.Unlock()

	ard, a, bytes, berr := build()

	fc.mu.Lock()
	if berr != nil {
		e.err = berr
		delete(fc.entries, key) // failures are not cached
		e.pins--
		close(e.ready)
		fc.mu.Unlock()
		return nil, false, berr
	}
	e.ard, e.a, e.bytes = ard, a, bytes
	fc.bytes += bytes
	fc.pushFront(e)
	fc.evictLocked()
	close(e.ready)
	fc.mu.Unlock()
	return e, false, nil
}

// release drops one pin and reclaims space if the cache ran over capacity
// while the entry was pinned.
func (fc *factorCache) release(e *factorEntry) {
	fc.mu.Lock()
	e.pins--
	fc.evictLocked()
	fc.mu.Unlock()
}

// evictLocked removes least-recently-used unpinned entries until the cache
// fits its capacity. Pinned entries — factorizations in flight or factors
// under an active solve — are skipped unconditionally.
func (fc *factorCache) evictLocked() {
	for fc.bytes > fc.capBytes {
		victim := fc.tail
		for victim != nil && victim.pins > 0 {
			victim = victim.prev
		}
		if victim == nil {
			return // everything resident is pinned; stay over budget
		}
		fc.unlink(victim)
		delete(fc.entries, victim.key)
		fc.bytes -= victim.bytes
		fc.stats.Evictions++
	}
}

// contains reports whether key is resident and ready (test/diagnostic use).
func (fc *factorCache) contains(key string) bool {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	e := fc.entries[key]
	return e != nil && isReady(e.ready)
}

// snapshot returns the counters and current byte footprint.
func (fc *factorCache) snapshot() (cacheStats, int64) {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return fc.stats, fc.bytes
}

func isReady(ch chan struct{}) bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// touch moves e to the LRU head. Callers hold fc.mu.
func (fc *factorCache) touch(e *factorEntry) {
	if !e.inLRU || fc.head == e {
		return
	}
	fc.unlink(e)
	fc.pushFront(e)
}

func (fc *factorCache) pushFront(e *factorEntry) {
	e.prev, e.next = nil, fc.head
	if fc.head != nil {
		fc.head.prev = e
	}
	fc.head = e
	if fc.tail == nil {
		fc.tail = e
	}
	e.inLRU = true
}

func (fc *factorCache) unlink(e *factorEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		fc.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		fc.tail = e.prev
	}
	e.prev, e.next = nil, nil
	e.inLRU = false
}
