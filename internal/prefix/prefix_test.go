package prefix

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"blocktri/internal/comm"
	"blocktri/internal/mat"
)

// concat is the canonical associative, non-commutative test op: sequences
// of float64 values under concatenation.
func concat(a, b []float64) []float64 {
	out := make([]float64, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

var sliceCodec = Codec[[]float64]{
	Encode: func(v []float64) []float64 { return v },
	Decode: func(p []float64) []float64 { return p },
}

// matMul is the 2x2 matrix product semigroup, right-applied-first so it
// matches the solver's operator composition convention: the combined
// element for spans [a][b] is later*earlier when elements act on vectors
// from the left. For scan testing we use plain earlier-then-later order.
func matMul(earlier, later *mat.Matrix) *mat.Matrix {
	out := mat.New(later.Rows, earlier.Cols)
	mat.Mul(out, later, earlier)
	return out
}

var matCodec = Codec[*mat.Matrix]{Encode: comm.EncodeMatrix, Decode: comm.DecodeMatrix}

func TestScanSlice(t *testing.T) {
	items := [][]float64{{1}, {2}, {3}}
	ScanSlice(items, concat)
	want := [][]float64{{1}, {1, 2}, {1, 2, 3}}
	if !reflect.DeepEqual(items, want) {
		t.Fatalf("ScanSlice = %v", items)
	}
}

func TestScanSliceCopyLeavesInput(t *testing.T) {
	items := [][]float64{{1}, {2}}
	out := ScanSliceCopy(items, concat)
	if !reflect.DeepEqual(items[1], []float64{2}) {
		t.Fatal("input modified")
	}
	if !reflect.DeepEqual(out[1], []float64{1, 2}) {
		t.Fatalf("copy scan wrong: %v", out)
	}
}

func TestReduce(t *testing.T) {
	items := [][]float64{{5}, {6}, {7}}
	if got := Reduce(items, concat); !reflect.DeepEqual(got, []float64{5, 6, 7}) {
		t.Fatalf("Reduce = %v", got)
	}
}

func TestReduceEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Reduce(nil, concat)
}

// runExScan executes the cross-rank exclusive scan for every rank and
// returns the per-rank results (nil slice where havePre is false).
func runExScan(t *testing.T, p int, sched Schedule) [][]float64 {
	t.Helper()
	w := comm.NewWorld(p)
	results := make([][]float64, p)
	w.Run(func(c *comm.Comm) {
		val := []float64{float64(c.Rank())}
		pre, ok := ExScanRanks(c, val, concat, sliceCodec, sched, 100)
		if ok {
			results[c.Rank()] = pre
		}
	})
	if w.Pending() != 0 {
		t.Fatalf("sched=%v P=%d: %d leaked messages", sched, p, w.Pending())
	}
	return results
}

func wantExclusive(r int) []float64 {
	out := make([]float64, r)
	for i := range out {
		out[i] = float64(i)
	}
	return out
}

func TestExScanRanksAllSchedules(t *testing.T) {
	cases := []struct {
		sched Schedule
		sizes []int
	}{
		{KoggeStone, []int{1, 2, 3, 4, 5, 7, 8, 16, 13}},
		{BrentKung, []int{1, 2, 4, 8, 16}},
		{Chain, []int{1, 2, 3, 4, 9}},
	}
	for _, tc := range cases {
		for _, p := range tc.sizes {
			got := runExScan(t, p, tc.sched)
			for r := 0; r < p; r++ {
				if r == 0 {
					if got[0] != nil {
						t.Fatalf("%v P=%d: rank 0 should have no prefix, got %v", tc.sched, p, got[0])
					}
					continue
				}
				if !reflect.DeepEqual(got[r], wantExclusive(r)) {
					t.Fatalf("%v P=%d rank %d: got %v want %v", tc.sched, p, r, got[r], wantExclusive(r))
				}
			}
		}
	}
}

func TestBrentKungRejectsNonPowerOfTwo(t *testing.T) {
	w := comm.NewWorld(3)
	err := w.Run(func(c *comm.Comm) {
		ExScanRanks(c, []float64{1}, concat, sliceCodec, BrentKung, 100)
	})
	if err == nil {
		t.Fatal("expected an error for P=3 Brent-Kung")
	}
	var re *comm.RankError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *comm.RankError", err)
	}
}

func TestScanRanksInclusive(t *testing.T) {
	for _, p := range []int{1, 2, 5, 8} {
		w := comm.NewWorld(p)
		w.Run(func(c *comm.Comm) {
			val := []float64{float64(c.Rank())}
			inc := ScanRanks(c, val, concat, sliceCodec, KoggeStone, 101)
			if !reflect.DeepEqual(inc, wantExclusive(c.Rank()+1)) {
				panic("inclusive scan wrong")
			}
		})
	}
}

func TestExScanMatrixSemigroupMatchesSequential(t *testing.T) {
	// Non-commutative matrix products across ranks must equal the
	// sequential left-to-right product of all earlier ranks' matrices.
	for _, p := range []int{2, 4, 8, 6} {
		sched := KoggeStone
		rng := rand.New(rand.NewSource(int64(p)))
		vals := make([]*mat.Matrix, p)
		for i := range vals {
			vals[i] = mat.Random(3, 3, rng)
		}
		w := comm.NewWorld(p)
		results := make([]*mat.Matrix, p)
		w.Run(func(c *comm.Comm) {
			pre, ok := ExScanRanks(c, vals[c.Rank()], matMul, matCodec, sched, 102)
			if ok {
				results[c.Rank()] = pre
			}
		})
		for r := 1; r < p; r++ {
			want := Reduce(vals[:r], matMul)
			if !results[r].EqualApprox(want, 1e-9) {
				t.Fatalf("P=%d rank %d: matrix prefix mismatch", p, r)
			}
		}
	}
}

func TestRounds(t *testing.T) {
	cases := []struct {
		sched Schedule
		p     int
		want  int
	}{
		{KoggeStone, 1, 0}, {KoggeStone, 2, 1}, {KoggeStone, 8, 3}, {KoggeStone, 9, 4},
		{BrentKung, 8, 6}, {Chain, 8, 7},
	}
	for _, tc := range cases {
		if got := Rounds(tc.sched, tc.p); got != tc.want {
			t.Fatalf("Rounds(%v, %d) = %d want %d", tc.sched, tc.p, got, tc.want)
		}
	}
}

func TestScheduleString(t *testing.T) {
	if KoggeStone.String() != "kogge-stone" || BrentKung.String() != "brent-kung" || Chain.String() != "chain" {
		t.Fatal("Schedule names wrong")
	}
	if Schedule(42).String() == "" {
		t.Fatal("unknown schedule should still render")
	}
}

// Property: for random rank counts and random per-rank sequence lengths,
// every schedule agrees with the sequential scan.
func TestSchedulesAgreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 1 + rng.Intn(12)
		vals := make([][]float64, p)
		for i := range vals {
			vals[i] = make([]float64, 1+rng.Intn(4))
			for j := range vals[i] {
				vals[i][j] = float64(rng.Intn(1000))
			}
		}
		scheds := []Schedule{KoggeStone, Chain}
		if p&(p-1) == 0 {
			scheds = append(scheds, BrentKung)
		}
		for _, sched := range scheds {
			w := comm.NewWorld(p)
			results := make([][]float64, p)
			oks := make([]bool, p)
			w.Run(func(c *comm.Comm) {
				pre, ok := ExScanRanks(c, vals[c.Rank()], concat, sliceCodec, sched, 103)
				results[c.Rank()], oks[c.Rank()] = pre, ok
			})
			for r := 0; r < p; r++ {
				if r == 0 {
					if oks[0] {
						return false
					}
					continue
				}
				if !oks[r] || !reflect.DeepEqual(results[r], Reduce(vals[:r], concat)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
