// Package prefix implements parallel prefix (scan) computation over an
// arbitrary associative operation, both within a rank (sequential scans
// over slices) and across the ranks of a communicator (recursive doubling
// a.k.a. Kogge-Stone, the Brent-Kung/Blelloch tree as an ablation
// alternative, and a sequential chain as the no-parallelism baseline).
//
// Recursive doubling across ranks is the schedule the paper's solvers are
// named after: ceil(log2 P) rounds, in round k every rank exchanges its
// running aggregate with the rank 2^k away.
package prefix

import (
	"fmt"

	"blocktri/internal/comm"
)

// Op combines two adjacent aggregates: Combine(earlier, later) must equal
// the aggregate of the concatenated span. It must be associative; it need
// not be commutative and the schedules never assume it is.
type Op[T any] func(earlier, later T) T

// Codec serializes scan elements for transport between ranks.
type Codec[T any] struct {
	Encode func(T) []float64
	Decode func([]float64) T
}

// Schedule selects the cross-rank scan algorithm.
type Schedule int

const (
	// KoggeStone is recursive doubling: ceil(log2 P) rounds, each rank
	// both sends and receives every round. This is the paper's schedule.
	KoggeStone Schedule = iota
	// BrentKung is the work-efficient tree scan (up-sweep + down-sweep,
	// 2*log2 P rounds but about half the combines). Requires a
	// power-of-two communicator; used for the schedule ablation.
	BrentKung
	// Chain is the sequential pipeline: rank r waits for rank r-1. P-1
	// rounds of latency; the no-parallelism baseline.
	Chain
)

// String implements fmt.Stringer for experiment labels.
func (s Schedule) String() string {
	switch s {
	case KoggeStone:
		return "kogge-stone"
	case BrentKung:
		return "brent-kung"
	case Chain:
		return "chain"
	default:
		return fmt.Sprintf("Schedule(%d)", int(s))
	}
}

// ScanSlice computes the inclusive prefix of items in place:
// items[i] becomes op(items[0], ..., items[i]).
//
//perf:hotpath
func ScanSlice[T any](items []T, op Op[T]) {
	//perf:hotloop
	for i := 1; i < len(items); i++ {
		items[i] = op(items[i-1], items[i])
	}
}

// ScanSliceCopy is ScanSlice into a fresh slice, leaving items untouched.
func ScanSliceCopy[T any](items []T, op Op[T]) []T {
	out := make([]T, len(items))
	copy(out, items)
	ScanSlice(out, op)
	return out
}

// Reduce combines all items left to right; it panics on an empty slice.
//
//perf:hotpath
func Reduce[T any](items []T, op Op[T]) T {
	if len(items) == 0 {
		panic("prefix: Reduce of empty slice")
	}
	acc := items[0]
	//perf:hotloop
	for _, it := range items[1:] {
		acc = op(acc, it)
	}
	return acc
}

// ExScanRanks computes the exclusive cross-rank prefix of val: rank r
// obtains op(val_0, ..., val_{r-1}). Rank 0 has no prefix and gets
// (zero T, false). All ranks must call it collectively with the same
// schedule and tag; the tag must not collide with other in-flight traffic.
func ExScanRanks[T any](c *comm.Comm, val T, op Op[T], codec Codec[T], sched Schedule, tag int) (T, bool) {
	switch sched {
	case KoggeStone:
		return exScanKoggeStone(c, val, op, codec, tag)
	case BrentKung:
		return exScanBrentKung(c, val, op, codec, tag)
	case Chain:
		return exScanChain(c, val, op, codec, tag)
	default:
		panic(fmt.Sprintf("prefix: unknown schedule %d", sched))
	}
}

func exScanKoggeStone[T any](c *comm.Comm, val T, op Op[T], codec Codec[T], tag int) (T, bool) {
	p := c.Size()
	r := c.Rank()
	acc := val // inclusive aggregate of [r-d+1 .. r] as rounds progress
	var pre T  // exclusive aggregate of the ranks received so far
	havePre := false
	for dist := 1; dist < p; dist <<= 1 {
		if r+dist < p {
			c.Send(r+dist, tag, codec.Encode(acc))
		}
		if r-dist >= 0 {
			recv := codec.Decode(c.Recv(r-dist, tag))
			// recv spans strictly earlier ranks than everything in pre.
			if havePre {
				pre = op(recv, pre)
			} else {
				pre = recv
				havePre = true
			}
			acc = op(recv, acc)
		}
	}
	return pre, havePre
}

// exScanChain is the sequential pipeline baseline.
func exScanChain[T any](c *comm.Comm, val T, op Op[T], codec Codec[T], tag int) (T, bool) {
	p := c.Size()
	r := c.Rank()
	var pre T
	havePre := false
	if r > 0 {
		pre = codec.Decode(c.Recv(r-1, tag))
		havePre = true
	}
	if r < p-1 {
		inc := val
		if havePre {
			inc = op(pre, val)
		}
		c.Send(r+1, tag, codec.Encode(inc))
	}
	return pre, havePre
}

// exScanBrentKung is the Blelloch two-phase tree scan adapted to a
// semigroup (no identity element) by tracking presence explicitly.
// It requires a power-of-two number of ranks.
func exScanBrentKung[T any](c *comm.Comm, val T, op Op[T], codec Codec[T], tag int) (T, bool) {
	p := c.Size()
	if p&(p-1) != 0 {
		panic(fmt.Sprintf("prefix: BrentKung requires power-of-two ranks, got %d", p))
	}
	r := c.Rank()
	// encodeOpt/decodeOpt wrap the codec with a presence flag so the
	// down-sweep can ship the "identity" (absent) value.
	encodeOpt := func(v T, ok bool) []float64 {
		if !ok {
			return []float64{0}
		}
		return append([]float64{1}, codec.Encode(v)...)
	}
	decodeOpt := func(p []float64) (T, bool) {
		var zero T
		if p[0] == 0 {
			return zero, false
		}
		return codec.Decode(p[1:]), true
	}

	// Up-sweep: after the round with stride d, ranks at positions
	// (r+1) % 2d == 0 hold the aggregate of [r-2d+1 .. r].
	acc, accOK := val, true
	for d := 1; d < p; d <<= 1 {
		if (r+1)%(2*d) == 0 {
			recv := codec.Decode(c.Recv(r-d, tag))
			acc = op(recv, acc)
		} else if (r+1)%(2*d) == d {
			c.Send(r+d, tag, codec.Encode(acc))
		}
	}
	// Down-sweep: the root clears its value to "absent" (identity), then
	// at each level partners swap: the left child receives the parent's
	// incoming prefix, the right child receives parent-prefix ∘ left-agg.
	if r == p-1 {
		accOK = false
	}
	for d := p / 2; d >= 1; d >>= 1 {
		if (r+1)%(2*d) == 0 {
			// Parent: send current (exclusive-so-far) down to left child,
			// receive the left child's up-sweep aggregate and append it.
			c.Send(r-d, tag, encodeOpt(acc, accOK))
			leftAgg := codec.Decode(c.Recv(r-d, tag))
			if accOK {
				acc = op(acc, leftAgg)
			} else {
				acc, accOK = leftAgg, true
			}
		} else if (r+1)%(2*d) == d {
			// Left child: hand the parent our up-sweep aggregate and adopt
			// the parent's incoming prefix.
			c.Send(r+d, tag, codec.Encode(acc))
			acc, accOK = decodeOpt(c.Recv(r+d, tag))
		}
	}
	return acc, accOK
}

// ScanRanks computes the inclusive cross-rank prefix: rank r obtains
// op(val_0, ..., val_r). Implemented as ExScanRanks plus a local combine.
func ScanRanks[T any](c *comm.Comm, val T, op Op[T], codec Codec[T], sched Schedule, tag int) T {
	pre, ok := ExScanRanks(c, val, op, codec, sched, tag)
	if !ok {
		return val
	}
	return op(pre, val)
}

// Rounds returns the number of communication rounds the schedule takes on
// p ranks (the latency term of the cost model).
//
//perf:inline
func Rounds(sched Schedule, p int) int {
	switch sched {
	case KoggeStone:
		return ceilLog2(p)
	case BrentKung:
		return 2 * ceilLog2(p)
	case Chain:
		return p - 1
	default:
		panic("prefix: unknown schedule")
	}
}

//perf:inline
func ceilLog2(p int) int {
	n, v := 0, 1
	for v < p {
		v <<= 1
		n++
	}
	return n
}
