// Package costmodel provides analytic cost predictions for every solver in
// internal/core: exact floating-point operation counts (mirroring, by
// independent construction, the counters the solvers accumulate at run
// time — the model and the instrumentation double-enter each other), plus
// alpha-beta communication estimates and wall-time predictions under a
// simple machine model.
//
// The headline quantities reproduce the paper's complexity analysis:
//
//	RD solve:    O(M^3 (N/P + log P))  per call, every call
//	ARD factor:  O(M^3 (N/P + log P))  once per matrix
//	ARD solve:   O(M^2 R (N/P + log P)) per call
//
// so R sequential single-right-hand-side solves cost R*M^3-ish under RD
// and M^3 + R*M^2-ish under ARD: the paper's O(R) improvement, saturating
// at O(M) once R exceeds the block size.
package costmodel

import (
	"blocktri/internal/comm"
	"blocktri/internal/core"
)

// Params identifies a problem/machine configuration.
type Params struct {
	N int // block rows
	M int // block size
	P int // ranks
	R int // right-hand-side columns per solve (batch width)
}

// Cost is a predicted cost breakdown.
type Cost struct {
	// Flops is the total operation count across ranks.
	Flops int64
	// MaxRankFlops is the largest per-rank count (compute critical path).
	MaxRankFlops int64
	// ScanWords is the total number of float64 words moved by the
	// cross-rank scan's sends (model of the bandwidth term).
	ScanWords int64
	// Rounds is the number of scan communication rounds (latency term).
	Rounds int
}

// Machine translates a Cost into predicted seconds.
type Machine struct {
	FlopsPerSec float64
	Net         comm.CostModel
}

// Time predicts the wall time of a bulk-synchronous step: compute critical
// path plus modeled network time for the scan traffic.
func (mc Machine) Time(c Cost) float64 {
	t := float64(c.MaxRankFlops) / mc.FlopsPerSec
	t += float64(c.Rounds) * mc.Net.Alpha
	t += float64(c.ScanWords) * 8 * mc.Net.Beta
	return t
}

// Flop-count helpers identical to the solvers' conventions.
func luFlops(n int) int64         { return 2 * int64(n) * int64(n) * int64(n) / 3 }
func luSolveFlops(n, r int) int64 { return 2 * int64(n) * int64(n) * int64(r) }
func gemmFlops(m, k, n int) int64 { return 2 * int64(m) * int64(k) * int64(n) }
func addFlops(m, n int) int64     { return int64(m) * int64(n) }

func ceilLog2(p int) int {
	n, v := 0, 1
	for v < p {
		v <<= 1
		n++
	}
	return n
}

// DenseFactor predicts the dense LU factor cost.
func DenseFactor(p Params) Cost {
	f := luFlops(p.N * p.M)
	return Cost{Flops: f, MaxRankFlops: f}
}

// DenseSolve predicts the dense LU solve cost.
func DenseSolve(p Params) Cost {
	f := luSolveFlops(p.N*p.M, p.R)
	return Cost{Flops: f, MaxRankFlops: f}
}

// ThomasFactor predicts the block Thomas factorization cost: one LU per
// block row plus one M-column solve and one GEMM per interior row.
func ThomasFactor(p Params) Cost {
	f := int64(p.N) * luFlops(p.M)
	f += int64(p.N-1) * (luSolveFlops(p.M, p.M) + gemmFlops(p.M, p.M, p.M))
	return Cost{Flops: f, MaxRankFlops: f}
}

// ThomasSolve predicts the block Thomas solve cost: one triangular solve
// per row in the forward sweep plus two GEMMs per interior row.
func ThomasSolve(p Params) Cost {
	f := int64(p.N) * luSolveFlops(p.M, p.R)
	f += int64(p.N-1) * 2 * gemmFlops(p.M, p.M, p.R)
	return Cost{Flops: f, MaxRankFlops: f}
}

// BCRSolve predicts the block cyclic reduction solve cost by walking the
// level structure (L is absent only at the first position and U only at
// the last, at every level — an invariant of the reduction).
func BCRSolve(p Params) Cost {
	var f int64
	m, r := p.M, p.R
	n := p.N
	for n > 1 {
		// Odd-row eliminations.
		for j := 1; j < n; j += 2 {
			f += luFlops(m) + luSolveFlops(m, m) + luSolveFlops(m, r) // D factor, invL, invB
			if j != n-1 {
				f += luSolveFlops(m, m) // invU
			}
		}
		// Reduced-row assembly on even positions.
		ne := (n + 1) / 2
		for k := 0; k < ne; k++ {
			j := 2 * k
			if k >= 1 {
				f += gemmFlops(m, m, m) // L_j invU_{j-1} into new D
				f += gemmFlops(m, m, r) // L_j invB_{j-1}
				f += gemmFlops(m, m, m) // new L
			}
			if j+1 < n {
				if j+1 != n-1 {
					f += gemmFlops(m, m, m) // U_j invL_{j+1}? (invL always present)
				} else {
					f += gemmFlops(m, m, m)
				}
				f += gemmFlops(m, m, r) // U_j invB_{j+1}
				if j+1 != n-1 {
					f += gemmFlops(m, m, m) // new U
				}
			}
		}
		// Back substitution for the odd rows.
		for j := 1; j < n; j += 2 {
			f += gemmFlops(m, m, r) // invL x_{j-1}
			if j+1 < n {
				f += gemmFlops(m, m, r) // invU x_{j+1}
			}
		}
		n = ne
	}
	f += luFlops(m) + luSolveFlops(m, r) // final 1x1 block solve
	return Cost{Flops: f, MaxRankFlops: f}
}

// scanState simulates which ranks hold non-identity aggregates during the
// cross-rank Kogge-Stone scan, which determines exactly which combines
// (and hence flops) occur.
type scanState struct {
	accNonID []bool
	preNonID []bool
}

func newScanState(elemsPerRank []int) *scanState {
	p := len(elemsPerRank)
	st := &scanState{accNonID: make([]bool, p), preNonID: make([]bool, p)}
	for r, e := range elemsPerRank {
		st.accNonID[r] = e > 0
	}
	return st
}

// step advances the scan by one round of the given distance, invoking
// onCombine(rank) for every non-identity combine performed at that rank
// and onSend(rank, nonIdentity) for every message sent.
func (st *scanState) step(dist int, onCombine func(rank int), onSend func(rank int, nonID bool)) {
	p := len(st.accNonID)
	accPrev := make([]bool, p)
	copy(accPrev, st.accNonID)
	for r := 0; r < p; r++ {
		if r+dist < p {
			onSend(r, accPrev[r])
		}
		if r-dist >= 0 && accPrev[r-dist] {
			if st.preNonID[r] {
				onCombine(r)
			}
			st.preNonID[r] = true
			if st.accNonID[r] {
				onCombine(r)
			}
			st.accNonID[r] = true
		}
	}
}

// elemsPerRank returns the number of scan elements each rank owns.
func elemsPerRank(n, p int) []int {
	out := make([]int, p)
	for r := 0; r < p; r++ {
		lo, hi := core.PartRange(n, p, r)
		first := lo
		if first < 1 {
			first = 1
		}
		if hi > first {
			out[r] = hi - first
		}
	}
	return out
}

// RDSolve predicts the cost of one classic recursive doubling solve with
// the Kogge-Stone schedule, mirroring core.RD's instrumentation exactly.
func RDSolve(p Params) Cost {
	n, m, r, pr := p.N, p.M, p.R, p.P
	if n == 1 {
		f := luFlops(m) + luSolveFlops(m, r)
		return Cost{Flops: f, MaxRankFlops: f}
	}
	perRank := make([]int64, pr)
	elems := elemsPerRank(n, pr)
	combine := gemmFlops(2*m, 2*m, 2*m) + gemmFlops(2*m, 2*m, r) + addFlops(2*m, r)

	// Phase 1: element construction and local reduction.
	for rank := 0; rank < pr; rank++ {
		lo, hi := core.PartRange(n, pr, rank)
		first := lo
		if first < 1 {
			first = 1
		}
		for i := first; i < hi; i++ {
			perRank[rank] += luFlops(m) + luSolveFlops(m, m) + luSolveFlops(m, r)
			if i-1 > 0 {
				perRank[rank] += luSolveFlops(m, m)
			}
			if i > first {
				perRank[rank] += combine
			}
		}
	}
	// Phase 2: cross-rank scan.
	var scanWords int64
	rounds := 0
	st := newScanState(elems)
	affineWords := int64(1 + (1 + 2 + 4*m*m) + (2 + 2*m*r)) // flag + count hdr + S + H
	for dist := 1; dist < pr; dist <<= 1 {
		rounds++
		st.step(dist,
			func(rank int) { perRank[rank] += combine },
			func(rank int, nonID bool) {
				if nonID {
					scanWords += affineWords
				} else {
					scanWords++
				}
			})
	}
	// Phase 3: reduced system at the last rank.
	last := pr - 1
	if st.preNonID[last] {
		perRank[last] += combine
	}
	perRank[last] += 2*gemmFlops(m, m, m) + luFlops(m) + 2*gemmFlops(m, m, r) + luSolveFlops(m, r)
	// Phase 4: recovery.
	for rank := 0; rank < pr; rank++ {
		if st.preNonID[rank] {
			perRank[rank] += gemmFlops(2*m, m, r) + addFlops(2*m, r)
		}
		perRank[rank] += int64(elems[rank]) * (gemmFlops(2*m, 2*m, r) + addFlops(2*m, r))
	}
	return fold(perRank, scanWords, rounds)
}

// ARDFactor predicts the once-per-matrix cost of ARD's factor phase.
func ARDFactor(p Params) Cost {
	n, m, pr := p.N, p.M, p.P
	if n == 1 {
		f := luFlops(m)
		return Cost{Flops: f, MaxRankFlops: f}
	}
	perRank := make([]int64, pr)
	elems := elemsPerRank(n, pr)
	combineS := gemmFlops(2*m, 2*m, 2*m)
	for rank := 0; rank < pr; rank++ {
		lo, hi := core.PartRange(n, pr, rank)
		first := lo
		if first < 1 {
			first = 1
		}
		for i := first; i < hi; i++ {
			perRank[rank] += luFlops(m) + luSolveFlops(m, m)
			if i-1 > 0 {
				perRank[rank] += luSolveFlops(m, m)
			}
			if i > first {
				perRank[rank] += combineS
			}
		}
	}
	var scanWords int64
	rounds := 0
	st := newScanState(elems)
	sWords := int64(1 + 2 + 4*m*m)
	for dist := 1; dist < pr; dist <<= 1 {
		rounds++
		st.step(dist,
			func(rank int) { perRank[rank] += combineS },
			func(rank int, nonID bool) {
				if nonID {
					scanWords += sWords
				} else {
					scanWords++
				}
			})
	}
	last := pr - 1
	if st.preNonID[last] {
		perRank[last] += combineS
	}
	perRank[last] += 2*gemmFlops(m, m, m) + luFlops(m)
	return fold(perRank, scanWords, rounds)
}

// ARDSolve predicts the per-call cost of ARD's solve phase: only M^2-sized
// kernels, only 2M x R payloads on the wire.
func ARDSolve(p Params) Cost {
	n, m, r, pr := p.N, p.M, p.R, p.P
	if n == 1 {
		f := luSolveFlops(m, r)
		return Cost{Flops: f, MaxRankFlops: f}
	}
	perRank := make([]int64, pr)
	elems := elemsPerRank(n, pr)
	combineH := gemmFlops(2*m, 2*m, r) + addFlops(2*m, r)
	for rank := 0; rank < pr; rank++ {
		e := elems[rank]
		perRank[rank] += int64(e) * luSolveFlops(m, r)
		if e > 1 {
			perRank[rank] += int64(e-1) * combineH
		}
	}
	var scanWords int64
	rounds := 0
	st := newScanState(elems)
	hWords := int64(1 + 2 + 2*m*r)
	for dist := 1; dist < pr; dist <<= 1 {
		rounds++
		st.step(dist,
			func(rank int) { perRank[rank] += combineH },
			func(rank int, nonID bool) {
				if nonID {
					scanWords += hWords
				} else {
					scanWords++
				}
			})
	}
	last := pr - 1
	if st.preNonID[last] {
		perRank[last] += combineH
	}
	perRank[last] += 2*gemmFlops(m, m, r) + luSolveFlops(m, r)
	for rank := 0; rank < pr; rank++ {
		if st.preNonID[rank] {
			perRank[rank] += gemmFlops(2*m, m, r) + addFlops(2*m, r)
		}
		perRank[rank] += int64(elems[rank]) * combineH
	}
	return fold(perRank, scanWords, rounds)
}

func fold(perRank []int64, scanWords int64, rounds int) Cost {
	var c Cost
	c.ScanWords = scanWords
	c.Rounds = rounds
	for _, f := range perRank {
		c.Flops += f
		if f > c.MaxRankFlops {
			c.MaxRankFlops = f
		}
	}
	return c
}

// PredictedSpeedup returns the flop-based predicted speedup of ARD over RD
// when solving nrhs sequential single-batch solves with the same matrix:
//
//	speedup = nrhs * RDsolve / (ARDfactor + nrhs * ARDsolve)
//
// computed on the compute critical path. This is the curve of the paper's
// headline figure: ~linear in nrhs until it saturates near O(M).
func PredictedSpeedup(p Params, nrhs int) float64 {
	rd := float64(RDSolve(p).MaxRankFlops)
	af := float64(ARDFactor(p).MaxRankFlops)
	as := float64(ARDSolve(p).MaxRankFlops)
	return float64(nrhs) * rd / (af + float64(nrhs)*as)
}

// SpikeFactor predicts the SPIKE partition method's factor cost: a local
// block Thomas factorization plus up to two M-column spike solves per
// rank, and the (P-1)-row reduced factorization at the root.
func SpikeFactor(p Params) Cost {
	if p.P == 1 {
		return ThomasFactor(p)
	}
	perRank := make([]int64, p.P)
	for r := 0; r < p.P; r++ {
		lo, hi := core.PartRange(p.N, p.P, r)
		nr := hi - lo
		chunk := Params{N: nr, M: p.M}
		perRank[r] = ThomasFactor(chunk).Flops
		if r > 0 {
			perRank[r] += ThomasSolve(Params{N: nr, M: p.M, R: p.M}).Flops
		}
		if r < p.P-1 {
			perRank[r] += ThomasSolve(Params{N: nr, M: p.M, R: p.M}).Flops
		}
	}
	perRank[0] += ThomasFactor(Params{N: p.P - 1, M: 2 * p.M}).Flops
	return fold(perRank, 0, 0)
}

// SpikeSolve predicts SPIKE's per-solve cost: a local chunk solve, the
// reduced solve at the root, and up to two spike-update GEMMs per rank.
func SpikeSolve(p Params) Cost {
	if p.P == 1 {
		return ThomasSolve(p)
	}
	perRank := make([]int64, p.P)
	for r := 0; r < p.P; r++ {
		lo, hi := core.PartRange(p.N, p.P, r)
		nr := hi - lo
		perRank[r] = ThomasSolve(Params{N: nr, M: p.M, R: p.R}).Flops
		if r > 0 {
			perRank[r] += gemmFlops(nr*p.M, p.M, p.R)
		}
		if r < p.P-1 {
			perRank[r] += gemmFlops(nr*p.M, p.M, p.R)
		}
	}
	perRank[0] += ThomasSolve(Params{N: p.P - 1, M: 2 * p.M, R: p.R}).Flops
	return fold(perRank, 0, 0)
}

// PCRFactor predicts distributed parallel cyclic reduction's factor cost:
// per level, every row inverts its diagonal and eliminates its couplings;
// the nil-structure (L absent iff i < d, U absent iff i+d >= N at the
// level with distance d) is deterministic, so the count is exact.
func PCRFactor(p Params) Cost {
	perRank := make([]int64, p.P)
	m := p.M
	for rank := 0; rank < p.P; rank++ {
		lo, hi := core.PartRange(p.N, p.P, rank)
		for d := 1; d < p.N; d <<= 1 {
			for i := lo; i < hi; i++ {
				perRank[rank] += luFlops(m) + luSolveFlops(m, m) // invD
				if i >= d {
					perRank[rank] += 2 * gemmFlops(m, m, m) // alpha, D update
					if i >= 2*d {
						perRank[rank] += gemmFlops(m, m, m) // new L
					}
				}
				if i+d <= p.N-1 {
					perRank[rank] += 2 * gemmFlops(m, m, m) // beta, D update
					if i+2*d <= p.N-1 {
						perRank[rank] += gemmFlops(m, m, m) // new U
					}
				}
			}
		}
		perRank[rank] += int64(hi-lo) * luFlops(m) // final diagonals
	}
	return fold(perRank, 0, 2*ceilLog2(p.N))
}

// PCRSolve predicts the per-solve cost: two halo GEMMs per row per level
// plus the final decoupled solves.
func PCRSolve(p Params) Cost {
	perRank := make([]int64, p.P)
	m, r := p.M, p.R
	for rank := 0; rank < p.P; rank++ {
		lo, hi := core.PartRange(p.N, p.P, rank)
		for d := 1; d < p.N; d <<= 1 {
			for i := lo; i < hi; i++ {
				if i >= d {
					perRank[rank] += gemmFlops(m, m, r)
				}
				if i+d <= p.N-1 {
					perRank[rank] += gemmFlops(m, m, r)
				}
			}
		}
		perRank[rank] += int64(hi-lo) * luSolveFlops(m, r)
	}
	return fold(perRank, 0, ceilLog2(p.N))
}
