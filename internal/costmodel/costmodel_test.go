package costmodel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"blocktri/internal/blocktri"
	"blocktri/internal/comm"
	"blocktri/internal/core"
)

// The costmodel predictions and the solvers' run-time instrumentation are
// written independently; these tests double-enter them against each other.

func TestThomasModelMatchesMeasured(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []Params{{N: 1, M: 3, R: 2}, {N: 7, M: 2, R: 1}, {N: 16, M: 5, R: 4}} {
		a := blocktri.RandomDiagDominant(tc.N, tc.M, rng)
		th := core.NewThomas(a)
		if err := th.Factor(); err != nil {
			t.Fatal(err)
		}
		if got, want := th.Stats().Flops, ThomasFactor(tc).Flops; got != want {
			t.Fatalf("N=%d M=%d: factor flops measured %d model %d", tc.N, tc.M, got, want)
		}
		b := a.RandomRHS(tc.R, rng)
		if _, err := th.Solve(b); err != nil {
			t.Fatal(err)
		}
		if got, want := th.Stats().Flops, ThomasSolve(tc).Flops; got != want {
			t.Fatalf("N=%d M=%d R=%d: solve flops measured %d model %d", tc.N, tc.M, tc.R, got, want)
		}
	}
}

func TestBCRModelMatchesMeasured(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, tc := range []Params{{N: 1, M: 2, R: 1}, {N: 2, M: 3, R: 2}, {N: 9, M: 2, R: 3}, {N: 16, M: 4, R: 1}, {N: 31, M: 3, R: 2}} {
		a := blocktri.RandomDiagDominant(tc.N, tc.M, rng)
		bcr := core.NewBCR(a)
		b := a.RandomRHS(tc.R, rng)
		if _, err := bcr.Solve(b); err != nil {
			t.Fatal(err)
		}
		if got, want := bcr.Stats().Flops, BCRSolve(tc).Flops; got != want {
			t.Fatalf("N=%d M=%d R=%d: BCR flops measured %d model %d", tc.N, tc.M, tc.R, got, want)
		}
	}
}

func TestRDModelMatchesMeasured(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, tc := range []Params{
		{N: 1, M: 3, P: 1, R: 2}, {N: 8, M: 2, P: 1, R: 1}, {N: 8, M: 2, P: 4, R: 3},
		{N: 13, M: 3, P: 4, R: 2}, {N: 16, M: 2, P: 5, R: 1}, {N: 3, M: 2, P: 8, R: 2},
	} {
		a := blocktri.RandomDiagDominant(tc.N, tc.M, rng)
		rd := core.NewRD(a, core.Config{World: comm.NewWorld(tc.P)})
		b := a.RandomRHS(tc.R, rng)
		if _, err := rd.Solve(b); err != nil {
			t.Fatal(err)
		}
		model := RDSolve(tc)
		if got := rd.Stats().Flops; got != model.Flops {
			t.Fatalf("%+v: RD flops measured %d model %d", tc, got, model.Flops)
		}
		if got := rd.Stats().MaxRankFlops; got != model.MaxRankFlops {
			t.Fatalf("%+v: RD max-rank flops measured %d model %d", tc, got, model.MaxRankFlops)
		}
	}
}

func TestARDModelMatchesMeasured(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, tc := range []Params{
		{N: 1, M: 3, P: 1, R: 2}, {N: 8, M: 2, P: 1, R: 1}, {N: 8, M: 2, P: 4, R: 3},
		{N: 13, M: 3, P: 4, R: 2}, {N: 16, M: 2, P: 5, R: 1}, {N: 3, M: 2, P: 8, R: 2},
	} {
		a := blocktri.RandomDiagDominant(tc.N, tc.M, rng)
		ard := core.NewARD(a, core.Config{World: comm.NewWorld(tc.P)})
		if err := ard.Factor(); err != nil {
			t.Fatal(err)
		}
		fModel := ARDFactor(tc)
		if got := ard.FactorStats().Flops; got != fModel.Flops {
			t.Fatalf("%+v: ARD factor flops measured %d model %d", tc, got, fModel.Flops)
		}
		if got := ard.FactorStats().MaxRankFlops; got != fModel.MaxRankFlops {
			t.Fatalf("%+v: ARD factor max-rank measured %d model %d", tc, got, fModel.MaxRankFlops)
		}
		b := a.RandomRHS(tc.R, rng)
		if _, err := ard.Solve(b); err != nil {
			t.Fatal(err)
		}
		sModel := ARDSolve(tc)
		if got := ard.Stats().Flops; got != sModel.Flops {
			t.Fatalf("%+v: ARD solve flops measured %d model %d", tc, got, sModel.Flops)
		}
		if got := ard.Stats().MaxRankFlops; got != sModel.MaxRankFlops {
			t.Fatalf("%+v: ARD solve max-rank measured %d model %d", tc, got, sModel.MaxRankFlops)
		}
	}
}

// Property: the model matches measurement for arbitrary configurations.
func TestModelMatchesMeasuredProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tc := Params{N: 1 + rng.Intn(20), M: 1 + rng.Intn(4), P: 1 + rng.Intn(6), R: 1 + rng.Intn(3)}
		a := blocktri.RandomDiagDominant(tc.N, tc.M, rng)
		b := a.RandomRHS(tc.R, rng)
		rd := core.NewRD(a, core.Config{World: comm.NewWorld(tc.P)})
		if _, err := rd.Solve(b); err != nil {
			return false
		}
		if rd.Stats().Flops != RDSolve(tc).Flops {
			return false
		}
		ard := core.NewARD(a, core.Config{World: comm.NewWorld(tc.P)})
		if err := ard.Factor(); err != nil {
			return false
		}
		if ard.FactorStats().Flops != ARDFactor(tc).Flops {
			return false
		}
		if _, err := ard.Solve(b); err != nil {
			return false
		}
		return ard.Stats().Flops == ARDSolve(tc).Flops
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAsymptoticShapes(t *testing.T) {
	// ARD solve must be ~M cheaper than RD solve per call at R=1.
	base := Params{N: 256, M: 16, P: 8, R: 1}
	rd := RDSolve(base).MaxRankFlops
	as := ARDSolve(base).MaxRankFlops
	ratio := float64(rd) / float64(as)
	if ratio < float64(base.M)/2 || ratio > 8*float64(base.M) {
		t.Fatalf("RD/ARD per-solve ratio %.1f not O(M=%d)", ratio, base.M)
	}
	// Doubling N ~doubles every N-dominated cost.
	big := base
	big.N *= 2
	if r := float64(RDSolve(big).Flops) / float64(RDSolve(base).Flops); r < 1.8 || r > 2.2 {
		t.Fatalf("RD flops not ~linear in N: ratio %v", r)
	}
	// Doubling M should scale RD by ~8 (M^3) and ARD solve by ~4 (M^2).
	bigM := base
	bigM.M *= 2
	if r := float64(RDSolve(bigM).Flops) / float64(RDSolve(base).Flops); r < 6 || r > 10 {
		t.Fatalf("RD flops not ~M^3: ratio %v", r)
	}
	if r := float64(ARDSolve(bigM).Flops) / float64(ARDSolve(base).Flops); r < 3 || r > 5 {
		t.Fatalf("ARD solve flops not ~M^2: ratio %v", r)
	}
	// ARD solve scales linearly in R.
	bigR := base
	bigR.R = 8
	if r := float64(ARDSolve(bigR).Flops) / float64(ARDSolve(base).Flops); r < 6 || r > 9 {
		t.Fatalf("ARD solve flops not ~linear in R: ratio %v", r)
	}
}

func TestPredictedSpeedupShape(t *testing.T) {
	p := Params{N: 512, M: 16, P: 8, R: 1}
	s1 := PredictedSpeedup(p, 1)
	if s1 > 1.05 {
		t.Fatalf("speedup at R=1 should be <= ~1, got %v", s1)
	}
	s16 := PredictedSpeedup(p, 16)
	s256 := PredictedSpeedup(p, 256)
	s4096 := PredictedSpeedup(p, 4096)
	if !(s16 > 2*s1 && s256 > s16 && s4096 > s256) {
		t.Fatalf("speedup not increasing: %v %v %v %v", s1, s16, s256, s4096)
	}
	// Saturation: the speedup approaches the RD/ARD per-solve ratio ~O(M).
	limit := float64(RDSolve(p).MaxRankFlops) / float64(ARDSolve(p).MaxRankFlops)
	if s4096 > limit {
		t.Fatalf("speedup %v exceeded its asymptote %v", s4096, limit)
	}
	if s4096 < 0.8*limit {
		t.Fatalf("speedup %v far from asymptote %v at R=4096", s4096, limit)
	}
}

func TestMachineTime(t *testing.T) {
	mc := Machine{FlopsPerSec: 1e9, Net: comm.CostModel{Alpha: 1e-6, Beta: 1e-10}}
	c := Cost{MaxRankFlops: 1e9, Rounds: 2, ScanWords: 1000}
	want := 1.0 + 2e-6 + 1000*8*1e-10
	if got := mc.Time(c); got < want*0.999 || got > want*1.001 {
		t.Fatalf("Time = %v want %v", got, want)
	}
}

func TestScanWordsARDBelowRD(t *testing.T) {
	p := Params{N: 256, M: 16, P: 8, R: 1}
	if ARDSolve(p).ScanWords*4 >= RDSolve(p).ScanWords {
		t.Fatalf("ARD scan words %d not well below RD %d",
			ARDSolve(p).ScanWords, RDSolve(p).ScanWords)
	}
	if RDSolve(p).Rounds != 3 || ARDSolve(p).Rounds != 3 {
		t.Fatalf("rounds should be log2(8)=3")
	}
}

func TestSpikeModelMatchesMeasured(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, tc := range []Params{
		{N: 8, M: 2, P: 1, R: 2}, {N: 8, M: 2, P: 2, R: 1}, {N: 13, M: 3, P: 4, R: 2},
		{N: 20, M: 2, P: 5, R: 3}, {N: 32, M: 4, P: 8, R: 1},
	} {
		a := blocktri.RandomDiagDominant(tc.N, tc.M, rng)
		sp := core.NewSpike(a, core.Config{World: comm.NewWorld(tc.P)})
		if err := sp.Factor(); err != nil {
			t.Fatal(err)
		}
		if got, want := sp.FactorStats().Flops, SpikeFactor(tc).Flops; got != want {
			t.Fatalf("%+v: spike factor flops measured %d model %d", tc, got, want)
		}
		b := a.RandomRHS(tc.R, rng)
		if _, err := sp.Solve(b); err != nil {
			t.Fatal(err)
		}
		if got, want := sp.Stats().Flops, SpikeSolve(tc).Flops; got != want {
			t.Fatalf("%+v: spike solve flops measured %d model %d", tc, got, want)
		}
	}
}

func TestPCRModelMatchesMeasured(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, tc := range []Params{
		{N: 1, M: 2, P: 1, R: 1}, {N: 8, M: 2, P: 2, R: 2}, {N: 13, M: 3, P: 4, R: 1},
		{N: 16, M: 2, P: 5, R: 3}, {N: 31, M: 3, P: 3, R: 2}, {N: 3, M: 2, P: 8, R: 1},
	} {
		a := blocktri.RandomDiagDominant(tc.N, tc.M, rng)
		pcr := core.NewPCR(a, core.Config{World: comm.NewWorld(tc.P)})
		if err := pcr.Factor(); err != nil {
			t.Fatal(err)
		}
		if got, want := pcr.FactorStats().Flops, PCRFactor(tc).Flops; got != want {
			t.Fatalf("%+v: PCR factor flops measured %d model %d", tc, got, want)
		}
		if got, want := pcr.FactorStats().MaxRankFlops, PCRFactor(tc).MaxRankFlops; got != want {
			t.Fatalf("%+v: PCR factor max-rank measured %d model %d", tc, got, want)
		}
		b := a.RandomRHS(tc.R, rng)
		if _, err := pcr.Solve(b); err != nil {
			t.Fatal(err)
		}
		if got, want := pcr.Stats().Flops, PCRSolve(tc).Flops; got != want {
			t.Fatalf("%+v: PCR solve flops measured %d model %d", tc, got, want)
		}
	}
}
