// Parameter study with many independent right-hand sides — the paper's
// headline regime (R ~ 10^2..10^4 right-hand sides per matrix). A
// transport-like sweep matrix is solved against R independent source
// configurations arriving one at a time, comparing three strategies:
//
//   - classic recursive doubling (full recomputation per source)
//   - accelerated recursive doubling (factor once, cheap per-source solve)
//   - sequential block Thomas (factor once, but serial: no rank parallelism)
//
// The output table is the shape of the paper's main result: ARD's total
// time stays near its one-time factor cost while RD grows linearly with a
// steep M^3 slope.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"blocktri"
)

func main() {
	const (
		n = 256 // block rows
		m = 12  // block size
		p = 4   // ranks
	)
	rng := rand.New(rand.NewSource(7))
	a := blocktri.NewOscillatory(n, m, rng)

	rd := blocktri.NewRD(a, blocktri.Config{World: blocktri.NewWorld(p)})
	ard := blocktri.NewARD(a, blocktri.Config{World: blocktri.NewWorld(p)})
	thomas := blocktri.NewThomas(a)

	// Pre-generate the sources so generation cost is excluded.
	const maxR = 128
	sources := make([]*blocktri.DenseMatrix, maxR)
	for i := range sources {
		sources[i] = randomRHS(a, rng)
	}

	factorStart := time.Now()
	if err := ard.Factor(); err != nil {
		log.Fatal(err)
	}
	ardFactor := time.Since(factorStart)
	if err := thomas.Factor(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("transport-style sweep: N=%d M=%d P=%d (ARD factor: %v)\n\n", n, m, p, ardFactor)
	fmt.Printf("%6s  %12s  %12s  %12s  %8s\n", "R", "RD total", "ARD total", "Thomas total", "RD/ARD")
	var rdTotal, ardTotal, thTotal time.Duration
	ardTotal = ardFactor
	next := 1
	for r := 1; r <= maxR; r++ {
		b := sources[r-1]
		rdTotal += timeSolve(rd, b)
		ardTotal += timeSolve(ard, b)
		thTotal += timeSolve(thomas, b)
		if r == next {
			fmt.Printf("%6d  %12v  %12v  %12v  %7.1fx\n",
				r, rdTotal, ardTotal, thTotal,
				rdTotal.Seconds()/ardTotal.Seconds())
			next *= 2
		}
	}

	// Accuracy spot check on the last source.
	xa, err := ard.Solve(sources[maxR-1])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrelative residual (last source): %.3e\n", a.RelResidual(xa, sources[maxR-1]))
	fmt.Printf("prefix growth diagnostic: %.3g (stable recurrence)\n", ard.Stats().PrefixGrowth)
}

func timeSolve(s blocktri.Solver, b *blocktri.DenseMatrix) time.Duration {
	start := time.Now()
	if _, err := s.Solve(b); err != nil {
		log.Fatal(err)
	}
	return time.Since(start)
}

func randomRHS(a *blocktri.Matrix, rng *rand.Rand) *blocktri.DenseMatrix {
	b := blocktri.NewDenseMatrix(a.N*a.M, 1)
	for i := range b.Data {
		b.Data[i] = 2*rng.Float64() - 1
	}
	return b
}
