// Scaling demo: the same system solved over increasing rank counts,
// reporting measured wall time alongside the communicator's
// instrumentation — message counts, bytes moved, and the alpha-beta
// modeled network time that predicts behavior on a real distributed
// machine (where this host's goroutine ranks would be MPI processes).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"blocktri"
)

func main() {
	const (
		n = 1024
		m = 8
	)
	rng := rand.New(rand.NewSource(11))
	a := blocktri.NewOscillatory(n, m, rng)
	b := blocktri.NewDenseMatrix(n*m, 1)
	for i := range b.Data {
		b.Data[i] = 2*rng.Float64() - 1
	}

	fmt.Printf("strong scaling of one ARD solve, N=%d M=%d\n\n", n, m)
	fmt.Printf("%4s  %12s  %12s  %10s  %10s  %12s\n",
		"P", "factor wall", "solve wall", "msgs", "bytes", "modeled net")
	for _, p := range []int{1, 2, 4, 8, 16, 32} {
		ard := blocktri.NewARD(a, blocktri.Config{World: blocktri.NewWorld(p)})
		if err := ard.Factor(); err != nil {
			log.Fatal(err)
		}
		if _, err := ard.Solve(b); err != nil { // warm caches
			log.Fatal(err)
		}
		x, err := ard.Solve(b)
		if err != nil {
			log.Fatal(err)
		}
		st := ard.Stats()
		fmt.Printf("%4d  %12v  %12v  %10d  %10d  %10.2es\n",
			p, ard.FactorStats().Wall, st.Wall,
			st.Comm.MsgsSent, st.Comm.BytesSent, st.MaxSimComm)
		if rr := a.RelResidual(x, b); rr > 1e-10 {
			log.Fatalf("P=%d: residual %v unexpectedly large", p, rr)
		}
	}
	fmt.Println("\nwall times on this host timeshare its cores; the modeled network")
	fmt.Println("column is the per-rank alpha-beta communication time a cluster would add")
}
