// A transport-style sweep with a time-varying source — the application
// domain the recursive doubling literature comes from. A 1-D slab is
// discretized into N cells whose per-cell moments (M per cell) couple
// only neighboring cells, giving a block tridiagonal system. A pulsed,
// moving source drives hundreds of solves against the SAME matrix: the
// paper's R ~ 10^2..10^4 regime, with right-hand sides that stream in
// over time and therefore cannot be batched.
//
// This example also demonstrates factorization persistence: the ARD
// factor state is saved to disk after the first run and restored on
// subsequent runs, skipping the O(M^3) phase entirely (run the example
// twice to see the restore path).
package main

import (
	"bytes"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"time"

	"blocktri"
)

const (
	cells   = 384 // spatial cells (block rows N)
	moments = 8   // angular moments per cell (block size M)
	ranks   = 4
	iters   = 200 // source iterations
	factorF = "transport.ardf"
)

func main() {
	a := slabOperator()

	start := time.Now()
	solver, restored := buildSolver(a)
	setup := time.Since(start)

	// One solve per source pulse; each pulse arrives only after the
	// previous response has been emitted (streaming, unbatchable).
	var x *blocktri.DenseMatrix
	var fluxSum float64
	sweepStart := time.Now()
	for k := 0; k < iters; k++ {
		b := sourceAt(k)
		var err error
		x, err = solver.Solve(b)
		if err != nil {
			log.Fatal(err)
		}
		norm := fluxNorm(x)
		if math.IsNaN(norm) || math.IsInf(norm, 0) {
			log.Fatalf("pulse %d: non-finite flux", k)
		}
		fluxSum += norm
	}
	sweeps := time.Since(sweepStart)

	fmt.Printf("slab transport: %d cells x %d moments, P=%d\n", cells, moments, ranks)
	if restored {
		fmt.Printf("setup: %v (factorization restored from %s)\n", setup, factorF)
	} else {
		fmt.Printf("setup: %v (factored and saved to %s; rerun to restore)\n", setup, factorF)
	}
	fmt.Printf("%d source pulses in %v (%v per sweep)\n", iters, sweeps, sweeps/iters)
	fmt.Printf("mean response norm: %.4f, last midpoint flux: %.6f\n",
		fluxSum/iters, x.At((cells/2)*moments, 0))
	fmt.Printf("prefix growth: %.3g (stable sweep recurrence)\n",
		solver.FactorStats().PrefixGrowth)
}

// buildSolver restores a saved factorization when available, otherwise
// factors and saves.
func buildSolver(a *blocktri.Matrix) (*blocktri.ARD, bool) {
	cfg := blocktri.Config{World: blocktri.NewWorld(ranks)}
	if data, err := os.ReadFile(factorF); err == nil {
		s, err := blocktri.LoadFactor(a, cfg, bytes.NewReader(data))
		if err == nil {
			return s, true
		}
		fmt.Printf("ignoring stale %s: %v\n", factorF, err)
	}
	s := blocktri.NewARD(a, cfg)
	if err := s.Factor(); err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := s.SaveFactor(&buf); err == nil {
		_ = os.WriteFile(factorF, buf.Bytes(), 0o644)
	}
	return s, false
}

// slabOperator builds the cell-coupled moment system: within-cell
// collision coupling plus upwind/downwind streaming to the neighbor
// cells, scaled so the cell-to-cell recurrence stays near the unit circle
// (optically thin cells).
func slabOperator() *blocktri.Matrix {
	rng := rand.New(rand.NewSource(5))
	return blocktri.NewOscillatory(cells, moments, rng)
}

// sourceAt builds pulse k: a Gaussian source whose center sweeps across
// the slab and whose amplitude pulses in time.
func sourceAt(k int) *blocktri.DenseMatrix {
	q := blocktri.NewDenseMatrix(cells*moments, 1)
	center := float64((k * 3) % cells)
	amp := 1 + 0.5*math.Sin(float64(k)/7)
	for c := 0; c < cells; c++ {
		s := amp * math.Exp(-sq(float64(c)-center)/sq(float64(cells)/16))
		q.Set(c*moments, 0, s) // isotropic: zeroth moment only
	}
	return q
}

func fluxNorm(x *blocktri.DenseMatrix) float64 {
	sum := 0.0
	for _, v := range x.Data {
		sum += v * v
	}
	return math.Sqrt(sum)
}

func sq(v float64) float64 { return v * v }
