// Quickstart: build a block tridiagonal system, solve it with accelerated
// recursive doubling, and check the residual and conditioning diagnostic.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"blocktri"
)

func main() {
	// A strongly anisotropic diffusion problem on a 32 x 64 grid: 64 block
	// rows (grid lines) with 32 x 32 blocks. Strong line-to-line coupling
	// keeps the block recurrence stable, which is the regime recursive
	// doubling is designed for (see the package documentation).
	a := blocktri.NewAnisotropicDiffusion(32, 64, 0.01)

	// A communicator with 4 ranks (goroutine-backed; on a cluster these
	// would be MPI processes).
	world := blocktri.NewWorld(4)
	solver := blocktri.NewARD(a, blocktri.Config{World: world})

	// Factor once; every subsequent Solve costs only O(M^2) per block row.
	if err := solver.Factor(); err != nil {
		log.Fatal(err)
	}

	// One right-hand side with three columns (three source terms solved
	// in one batched call).
	rng := rand.New(rand.NewSource(1))
	b := blocktri.NewDenseMatrix(a.N*a.M, 3)
	for i := range b.Data {
		b.Data[i] = rng.Float64()
	}

	x, err := solver.Solve(b)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("system: %d unknowns (N=%d block rows, M=%d block size)\n",
		a.N*a.M, a.N, a.M)
	fmt.Printf("relative residual: %.3e\n", a.RelResidual(x, b))
	fmt.Printf("prefix growth (error amplification ~ this x 1e-16): %.3g\n",
		solver.Stats().PrefixGrowth)
	fmt.Printf("factor: %v, solve: %v\n",
		solver.FactorStats().Wall, solver.Stats().Wall)
	fmt.Printf("solve moved %d bytes in %d messages across %d ranks\n",
		solver.Stats().Comm.BytesSent, solver.Stats().Comm.MsgsSent, world.P)
}
