// Quasi-static anisotropic heat conduction with a moving source — a
// physical instance of the paper's "many right-hand sides, one matrix"
// workload. In strongly magnetized plasmas (and fiber composites), heat
// flows far more easily along field lines than across them, giving the
// anisotropic operator -eps*u_xx - u_yy. A localized heat source sweeps
// across the domain over many time instants; at each instant the
// quasi-static temperature field solves
//
//	A u_t = f_t
//
// with the SAME matrix A and a NEW source f_t that arrives as the
// trajectory unfolds (streamed, not batchable). Classic recursive doubling
// redoes its full O(M^3 N/P) factor-equivalent work per instant;
// accelerated recursive doubling factors once.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"blocktri"
)

const (
	nx    = 32   // grid columns = block size M
	ny    = 64   // grid lines   = block rows N
	steps = 64   // source positions along the trajectory
	eps   = 0.02 // cross-line conductivity ratio
)

func main() {
	a := blocktri.NewAnisotropicDiffusion(nx, ny, eps)

	ard := blocktri.NewARD(a, blocktri.Config{World: blocktri.NewWorld(4)})
	rd := blocktri.NewRD(a, blocktri.Config{World: blocktri.NewWorld(4)})

	// --- ARD: one factorization, then a cheap solve per source position.
	startARD := time.Now()
	if err := ard.Factor(); err != nil {
		log.Fatal(err)
	}
	var peakTrace []float64
	for t := 0; t < steps; t++ {
		u, err := ard.Solve(sourceAt(t))
		if err != nil {
			log.Fatal(err)
		}
		peakTrace = append(peakTrace, peak(u))
	}
	ardTime := time.Since(startARD)

	// --- Classic RD: full recomputation at every source position.
	startRD := time.Now()
	var rdPeaks []float64
	for t := 0; t < steps; t++ {
		u, err := rd.Solve(sourceAt(t))
		if err != nil {
			log.Fatal(err)
		}
		rdPeaks = append(rdPeaks, peak(u))
	}
	rdTime := time.Since(startRD)

	maxDiff := 0.0
	for i := range peakTrace {
		if d := math.Abs(peakTrace[i] - rdPeaks[i]); d > maxDiff {
			maxDiff = d
		}
	}

	fmt.Printf("anisotropic conduction (eps=%.2f) on %dx%d grid, %d source positions\n",
		eps, nx, ny, steps)
	fmt.Printf("  ARD: factor + %d solves  %v\n", steps, ardTime)
	fmt.Printf("  RD : %d full solves      %v\n", steps, rdTime)
	fmt.Printf("  speedup: %.1fx\n", rdTime.Seconds()/ardTime.Seconds())
	fmt.Printf("  max |peak_ARD - peak_RD| = %.3e (identical physics)\n", maxDiff)
	fmt.Printf("  temperature peak along trajectory: first %.4f, mid %.4f, last %.4f\n",
		peakTrace[0], peakTrace[steps/2], peakTrace[steps-1])

	// Sanity: the solution must satisfy the system tightly.
	b := sourceAt(steps - 1)
	u, err := ard.Solve(b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  relative residual (last instant): %.3e\n", a.RelResidual(u, b))
}

// sourceAt builds the heat deposition for trajectory instant t: a Gaussian
// spot moving diagonally across the grid.
func sourceAt(t int) *blocktri.DenseMatrix {
	b := blocktri.NewDenseMatrix(nx*ny, 1)
	cx := 4 + (nx-8)*t/steps
	cy := 4 + (ny-8)*t/steps
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			dx, dy := float64(x-cx), float64(y-cy)
			b.Set(y*nx+x, 0, math.Exp(-(dx*dx+dy*dy)/8))
		}
	}
	return b
}

func peak(u *blocktri.DenseMatrix) float64 {
	max := 0.0
	for _, v := range u.Data {
		if v > max {
			max = v
		}
	}
	return max
}
