// Package blocktri is the public API of the accelerated recursive doubling
// library: parallel solvers for block tridiagonal systems of linear
// equations, reproducing S. Seal, "An Accelerated Recursive Doubling
// Algorithm for Block Tridiagonal Systems", IPDPS 2014.
//
// A block tridiagonal system has N block rows with M x M blocks:
//
//	L[i] x[i-1] + D[i] x[i] + U[i] x[i+1] = b[i],  i = 0..N-1
//
// Four solvers share the Solver interface:
//
//   - NewThomas: sequential block LU (the serial work-optimal baseline)
//   - NewBCR: block cyclic reduction
//   - NewRD: classic recursive doubling over a rank communicator
//   - NewARD: the paper's accelerated recursive doubling, which factors
//     the matrix-dependent prefix computation once and then solves each
//     right-hand side with only O(M^2 (N/P + log P)) work — an O(R)
//     improvement when R right-hand sides share one matrix.
//
// Quick start:
//
//	a := blocktri.NewAnisotropicDiffusion(64, 128, 0.01)
//	world := blocktri.NewWorld(8)              // 8 communicating ranks
//	solver := blocktri.NewARD(a, blocktri.Config{World: world})
//	x, err := solver.Solve(b)                  // b is (N*M) x R stacked
//
// Numerical caveat: RD and ARD propagate the three-term block recurrence
// through transfer-matrix prefix products, so their rounding error scales
// with the growth of those products (reported as SolveStats.PrefixGrowth).
// They are accurate on stable-recurrence workloads (transport sweeps,
// strongly anisotropic diffusion, the Oscillatory family) and lose digits
// exponentially on matrices whose recurrence modes grow — e.g. strongly
// diagonally dominant systems such as an isotropic Laplacian; use Thomas
// or BCR there. Check PrefixGrowth after a solve: error is roughly
// PrefixGrowth times machine epsilon.
//
// The heavy lifting lives in the internal packages (internal/mat dense
// kernels, internal/comm message-passing runtime, internal/prefix parallel
// scans, internal/core solvers); this package re-exports the stable
// surface.
package blocktri

import (
	"io"
	"math/rand"

	iblocktri "blocktri/internal/blocktri"
	"blocktri/internal/comm"
	"blocktri/internal/core"
	"blocktri/internal/costmodel"
	"blocktri/internal/mat"
	"blocktri/internal/prefix"
)

// Matrix is a block tridiagonal matrix of N block rows with M x M blocks.
type Matrix = iblocktri.Matrix

// DenseMatrix is a dense row-major matrix; stacked right-hand sides and
// solutions are DenseMatrix values of shape (N*M) x R.
type DenseMatrix = mat.Matrix

// World is a set of communicating ranks (the in-process MPI stand-in).
type World = comm.World

// CommStats aggregates message counts, bytes and modeled network time.
type CommStats = comm.Stats

// Solver is the common solve interface; see the core package for details.
type Solver = core.Solver

// Factored marks solvers with a Factor/Solve split.
type Factored = core.Factored

// Config selects the communicator and scan schedule for RD and ARD.
type Config = core.Config

// SolveStats reports the cost of a solver's last operation.
type SolveStats = core.SolveStats

// Thomas, BCR, RD, ARD and Dense are the concrete solver types.
type (
	// Thomas is the sequential block Thomas solver.
	Thomas = core.Thomas
	// BCR is sequential block cyclic reduction.
	BCR = core.BCR
	// RD is classic recursive doubling.
	RD = core.RD
	// ARD is accelerated recursive doubling (the paper's contribution).
	ARD = core.ARD
	// Spike is the SPIKE partition method: the numerically stable
	// factor/solve-split parallel baseline.
	Spike = core.Spike
	// PCR is distributed parallel cyclic reduction: stable, O(log N)
	// span, O(M^3 N log N) work.
	PCR = core.PCR
	// Dense is the dense-LU reference solver.
	Dense = core.Dense
)

// Schedule selects the cross-rank scan algorithm for RD.
type Schedule = prefix.Schedule

// Scan schedules.
const (
	KoggeStone = prefix.KoggeStone
	BrentKung  = prefix.BrentKung
	Chain      = prefix.Chain
)

// Error sentinels re-exported for errors.Is checks by callers.
var (
	// ErrShape reports a right-hand side whose shape does not match the
	// system.
	ErrShape = core.ErrShape
	// ErrSingularSuper reports a singular super-diagonal block, which the
	// recursive doubling formulation cannot handle (use a stable solver).
	ErrSingularSuper = core.ErrSingularSuper
	// ErrChunkTooSmall reports a SPIKE partition with fewer than two
	// block rows per rank.
	ErrChunkTooSmall = core.ErrChunkTooSmall
)

// NewWorld returns a communicator with p ranks.
func NewWorld(p int) *World { return comm.NewWorld(p) }

// New returns an all-zero block tridiagonal matrix with n block rows of
// size m (corner blocks nil, all others allocated).
func New(n, m int) *Matrix { return iblocktri.New(n, m) }

// NewThomas returns the sequential block Thomas solver for a.
func NewThomas(a *Matrix) *Thomas { return core.NewThomas(a) }

// NewBCR returns the block cyclic reduction solver for a.
func NewBCR(a *Matrix) *BCR { return core.NewBCR(a) }

// NewRD returns the classic recursive doubling solver for a.
func NewRD(a *Matrix, cfg Config) *RD { return core.NewRD(a, cfg) }

// NewARD returns the accelerated recursive doubling solver for a.
func NewARD(a *Matrix, cfg Config) *ARD { return core.NewARD(a, cfg) }

// NewSpike returns the SPIKE partition solver for a (requires N >= 2P).
func NewSpike(a *Matrix, cfg Config) *Spike { return core.NewSpike(a, cfg) }

// NewPCR returns the distributed parallel cyclic reduction solver for a.
func NewPCR(a *Matrix, cfg Config) *PCR { return core.NewPCR(a, cfg) }

// Auto selects a solver automatically using the PrefixGrowth diagnostic.
type Auto = core.Auto

// AutoOptions tunes NewAuto's selection policy.
type AutoOptions = core.AutoOptions

// NewAuto returns a solver that picks ARD, SPIKE or Thomas based on the
// matrix's measured recurrence growth and the partition constraints.
func NewAuto(a *Matrix, cfg Config, opt AutoOptions) *Auto {
	return core.NewAuto(a, cfg, opt)
}

// NewDense returns the dense LU reference solver for a (test scale only).
func NewDense(a *Matrix) *Dense { return core.NewDense(a) }

// NewDenseMatrix returns a zeroed r x c dense matrix.
func NewDenseMatrix(r, c int) *DenseMatrix { return mat.New(r, c) }

// NewPoisson2D returns the 5-point Laplacian on an nx x ny grid as a block
// tridiagonal matrix with ny block rows of size nx.
func NewPoisson2D(nx, ny int) *Matrix { return iblocktri.Poisson2D(nx, ny) }

// NewConvectionDiffusion returns a non-symmetric convection-diffusion
// operator on an nx x ny grid; |peclet| < 2.
func NewConvectionDiffusion(nx, ny int, peclet float64) *Matrix {
	return iblocktri.ConvectionDiffusion(nx, ny, peclet)
}

// NewAnisotropicDiffusion returns a strongly anisotropic diffusion
// operator (-eps*u_xx - u_yy) on an nx x ny grid — the PDE family whose
// line-to-line recurrence is stable enough for large-N recursive doubling.
func NewAnisotropicDiffusion(nx, ny int, eps float64) *Matrix {
	return iblocktri.AnisotropicDiffusion(nx, ny, eps)
}

// NewRandomDiagDominant returns a strictly diagonally dominant random
// system (well conditioned for all solvers).
func NewRandomDiagDominant(n, m int, rng *rand.Rand) *Matrix {
	return iblocktri.RandomDiagDominant(n, m, rng)
}

// NewOscillatory returns a system whose propagation modes lie on the unit
// circle — the stable-recurrence family suited to large-N recursive
// doubling runs.
func NewOscillatory(n, m int, rng *rand.Rand) *Matrix {
	return iblocktri.Oscillatory(n, m, rng)
}

// NewBlockToeplitz returns a block Toeplitz tridiagonal system.
func NewBlockToeplitz(n, m int, rng *rand.Rand) *Matrix {
	return iblocktri.BlockToeplitz(n, m, rng)
}

// NewScalarTridiagonal builds the M=1 block system for a classic scalar
// tridiagonal matrix (sub-diagonal, diagonal, super-diagonal).
func NewScalarTridiagonal(lower, diag, upper []float64) *Matrix {
	return iblocktri.FromScalarTridiagonal(lower, diag, upper)
}

// EstimateGrowth cheaply predicts the per-row growth rate of the
// recursive doubling recurrence for a (see core.EstimateGrowth): rates
// near 1 mean RD/ARD will be accurate; rates well above 1 mean their
// error grows like rate^N and a stable solver should be used.
func EstimateGrowth(a *Matrix, samples int) float64 {
	return core.EstimateGrowth(a, samples)
}

// LoadFactor restores an ARD factorization previously written with
// (*ARD).SaveFactor for the same matrix shape and world size, skipping
// the O(M^3) factor phase entirely.
func LoadFactor(a *Matrix, cfg Config, r io.Reader) (*ARD, error) {
	return core.LoadFactor(a, cfg, r)
}

// RefineReport describes what iterative refinement achieved.
type RefineReport = core.RefineReport

// ResidualSolver is a solver usable with SolveRefined.
type ResidualSolver = core.ResidualSolver

// SolveRefined solves A*x = b and applies up to maxIters steps of
// iterative refinement, extending the accuracy of the prefix-based
// solvers whenever PrefixGrowth*eps is well below 1.
func SolveRefined(s ResidualSolver, b *DenseMatrix, maxIters int) (*DenseMatrix, RefineReport, error) {
	return core.SolveRefined(s, b, maxIters)
}

// CostParams identifies a configuration for the analytic cost model.
type CostParams = costmodel.Params

// PredictedSpeedup returns the modeled ARD-over-RD speedup for nrhs
// sequential solves sharing one matrix.
func PredictedSpeedup(p CostParams, nrhs int) float64 {
	return costmodel.PredictedSpeedup(p, nrhs)
}
