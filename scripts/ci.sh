#!/bin/sh
# Full verification pipeline: build, vet, domain lint, tests, race tests,
# chaos smoke, perf-regression gate. Run from the repository root (make ci).
set -eux

go build ./...
go vet ./...
# Domain lint, once: the text stream on stdout gates the build while the
# same run is archived as SARIF for code-scanning upload. Incremental by
# default — only packages whose content or dependencies changed since the
# last run are re-analyzed (.blocktri-lint-cache/; -no-cache forces cold).
go run ./cmd/blocktri-lint -format text,sarif -sarif-out reports/lint.sarif ./...
# Performance-contract pass, archived on its own: just the compiler-evidence
# quartet (perfescape, perfbce, perfinline, asmcheck), so code scanning gets
# a report scoped to the perf contracts next to the full-suite one. The
# full-suite run above already computed and cached the compiler fact table,
# so this pass replays it instead of re-invoking the toolchain.
go run ./cmd/blocktri-lint -analyzers perfescape,perfbce,perfinline,asmcheck \
	-format text,sarif -sarif-out reports/lint-perf.sarif ./...
go test ./...
go test -race ./...
# Chaos smoke: a fixed-seed fault-injection campaign over every solver.
# The invariant (docs/RESILIENCE.md): each trial ends in a correct solution
# or a clean typed error — never a hang, never a silent wrong answer.
go run ./cmd/blocktri-chaos -seed 1 -plans 32
# Service chaos, under the race detector: concurrent tenants against a
# fault-injected blocktri-serve backend. Every request must end in a correct
# solution or a clean typed error within deadline — no hangs, no goroutine
# leaks, no cross-tenant stalls (make serve-chaos).
go run -race ./cmd/blocktri-chaos -service -seed 1 -tenants 5 -requests 120
# Perf gate: re-measure the hot paths and fail on >15% ns/op regression or
# any allocs/op increase against the committed BENCH_*.json baselines —
# the batched ARD solve (ARDSolve/R={1,64,256}), the GEMM kernel tiers
# including the skinny panel shapes the panelized solve issues, the lint
# suite, and the serve warm-factor path (wider, budget-backed gates; see
# perf_serve.go). After an intentional perf change, refresh the baselines
# with `make bench-baseline`.
go run ./cmd/blocktri-bench -perf compare
