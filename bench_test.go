// Benchmarks regenerating the measured quantity behind every experiment
// table and figure (E1..E10, see DESIGN.md). Each benchmark measures the
// operation whose time the corresponding table reports; custom metrics
// (flops, bytes, speedup) are attached via b.ReportMetric. Run with:
//
//	go test -bench=. -benchmem
//
// The full formatted tables (with sweeps and derived columns) come from
// cmd/blocktri-bench.
package blocktri_test

import (
	"fmt"
	"math/rand"
	"testing"

	"blocktri"
	"blocktri/internal/costmodel"
	"blocktri/internal/mat"
	"blocktri/internal/prefix"
	"blocktri/internal/workload"
)

// benchMatrix builds the standard benchmark workload (oscillatory family:
// stable recurrence, so large N neither overflows nor stalls on
// subnormals).
func benchMatrix(n, m int) *blocktri.Matrix {
	return workload.Build(workload.Oscillatory, n, m, 1)
}

func benchRHS(a *blocktri.Matrix, r int, seed int64) *blocktri.DenseMatrix {
	return a.RandomRHS(r, rand.New(rand.NewSource(seed)))
}

// solveLoop runs s.Solve(b) b.N times, reporting the analytic flop rate if
// the solver exposes stats.
func solveLoop(b *testing.B, s blocktri.Solver, rhs *blocktri.DenseMatrix) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Solve(rhs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	type statser interface{ Stats() blocktri.SolveStats }
	if st, ok := s.(statser); ok {
		b.ReportMetric(float64(st.Stats().Flops), "flops/op")
		b.ReportMetric(float64(st.Stats().Comm.BytesSent), "netbytes/op")
	}
}

// E1: per-solve cost of RD vs factor-then-solve ARD at the headline
// configuration. The E1 table's totals for R right-hand sides are
// R*RD vs ARDFactor + R*ARDSolve.
func BenchmarkE1_RDSolve(b *testing.B) {
	defer quietKernels()()
	a := benchMatrix(512, 16)
	rhs := benchRHS(a, 1, 2)
	solveLoop(b, blocktri.NewRD(a, blocktri.Config{World: blocktri.NewWorld(8)}), rhs)
}

func BenchmarkE1_ARDFactor(b *testing.B) {
	defer quietKernels()()
	a := benchMatrix(512, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ard := blocktri.NewARD(a, blocktri.Config{World: blocktri.NewWorld(8)})
		if err := ard.Factor(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1_ARDSolve(b *testing.B) {
	defer quietKernels()()
	a := benchMatrix(512, 16)
	ard := blocktri.NewARD(a, blocktri.Config{World: blocktri.NewWorld(8)})
	if err := ard.Factor(); err != nil {
		b.Fatal(err)
	}
	solveLoop(b, ard, benchRHS(a, 1, 2))
}

// E2: the speedup-vs-R curve is determined by the per-call times of RD and
// ARD at each block size M; benchmark both across the E2 sweep.
func BenchmarkE2_SpeedupVsR(b *testing.B) {
	defer quietKernels()()
	for _, m := range []int{4, 8, 16, 32} {
		a := benchMatrix(256, m)
		rhs := benchRHS(a, 1, 3)
		b.Run(fmt.Sprintf("RD/M=%d", m), func(b *testing.B) {
			solveLoop(b, blocktri.NewRD(a, blocktri.Config{World: blocktri.NewWorld(8)}), rhs)
		})
		b.Run(fmt.Sprintf("ARD/M=%d", m), func(b *testing.B) {
			ard := blocktri.NewARD(a, blocktri.Config{World: blocktri.NewWorld(8)})
			if err := ard.Factor(); err != nil {
				b.Fatal(err)
			}
			solveLoop(b, ard, rhs)
			prm := blocktri.CostParams{N: 256, M: m, P: 8, R: 1}
			b.ReportMetric(blocktri.PredictedSpeedup(prm, 1024), "speedup-at-R1024")
		})
	}
}

// E3: strong scaling of one solve across rank counts.
func BenchmarkE3_StrongScaling(b *testing.B) {
	defer quietKernels()()
	for _, p := range []int{1, 2, 4, 8, 16} {
		a := benchMatrix(2048, 8)
		rhs := benchRHS(a, 1, 4)
		b.Run(fmt.Sprintf("RD/P=%d", p), func(b *testing.B) {
			solveLoop(b, blocktri.NewRD(a, blocktri.Config{World: blocktri.NewWorld(p)}), rhs)
		})
		b.Run(fmt.Sprintf("ARD/P=%d", p), func(b *testing.B) {
			ard := blocktri.NewARD(a, blocktri.Config{World: blocktri.NewWorld(p)})
			if err := ard.Factor(); err != nil {
				b.Fatal(err)
			}
			solveLoop(b, ard, rhs)
		})
	}
}

// E4: runtime vs N.
func BenchmarkE4_RuntimeVsN(b *testing.B) {
	defer quietKernels()()
	for _, n := range []int{128, 512, 2048} {
		a := benchMatrix(n, 8)
		rhs := benchRHS(a, 1, 5)
		b.Run(fmt.Sprintf("RD/N=%d", n), func(b *testing.B) {
			solveLoop(b, blocktri.NewRD(a, blocktri.Config{World: blocktri.NewWorld(8)}), rhs)
		})
		b.Run(fmt.Sprintf("ARD/N=%d", n), func(b *testing.B) {
			ard := blocktri.NewARD(a, blocktri.Config{World: blocktri.NewWorld(8)})
			if err := ard.Factor(); err != nil {
				b.Fatal(err)
			}
			solveLoop(b, ard, rhs)
		})
		b.Run(fmt.Sprintf("Thomas/N=%d", n), func(b *testing.B) {
			th := blocktri.NewThomas(a)
			if err := th.Factor(); err != nil {
				b.Fatal(err)
			}
			solveLoop(b, th, rhs)
		})
	}
}

// E5: runtime vs block size M (the M^3 vs M^2 split).
func BenchmarkE5_RuntimeVsM(b *testing.B) {
	defer quietKernels()()
	for _, m := range []int{4, 8, 16, 32} {
		a := benchMatrix(256, m)
		rhs := benchRHS(a, 1, 6)
		b.Run(fmt.Sprintf("RD/M=%d", m), func(b *testing.B) {
			solveLoop(b, blocktri.NewRD(a, blocktri.Config{World: blocktri.NewWorld(8)}), rhs)
		})
		b.Run(fmt.Sprintf("ARD/M=%d", m), func(b *testing.B) {
			ard := blocktri.NewARD(a, blocktri.Config{World: blocktri.NewWorld(8)})
			if err := ard.Factor(); err != nil {
				b.Fatal(err)
			}
			solveLoop(b, ard, rhs)
		})
	}
}

// E6: the accuracy table's underlying solves (all solvers, one family mix).
func BenchmarkE6_AccuracySolves(b *testing.B) {
	defer quietKernels()()
	a := workload.Build(workload.RandomDD, 64, 4, 7)
	rhs := benchRHS(a, 2, 7)
	for _, s := range []blocktri.Solver{
		blocktri.NewThomas(a),
		blocktri.NewBCR(a),
		blocktri.NewRD(a, blocktri.Config{World: blocktri.NewWorld(4)}),
	} {
		b.Run(s.Name(), func(b *testing.B) { solveLoop(b, s, rhs) })
	}
}

// E7: communication per solve — the times here pair with the byte/message
// metrics reported on each benchmark line.
func BenchmarkE7_Comm(b *testing.B) {
	defer quietKernels()()
	for _, p := range []int{2, 8, 32} {
		a := benchMatrix(1024, 16)
		rhs := benchRHS(a, 1, 8)
		b.Run(fmt.Sprintf("RD/P=%d", p), func(b *testing.B) {
			solveLoop(b, blocktri.NewRD(a, blocktri.Config{World: blocktri.NewWorld(p)}), rhs)
		})
		b.Run(fmt.Sprintf("ARDSolve/P=%d", p), func(b *testing.B) {
			ard := blocktri.NewARD(a, blocktri.Config{World: blocktri.NewWorld(p)})
			if err := ard.Factor(); err != nil {
				b.Fatal(err)
			}
			solveLoop(b, ard, rhs)
		})
	}
}

// E8: ARD's two phases at the headline configuration.
func BenchmarkE8_PhaseBreakdown(b *testing.B) {
	defer quietKernels()()
	a := benchMatrix(512, 16)
	rhs := benchRHS(a, 1, 9)
	b.Run("Factor", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ard := blocktri.NewARD(a, blocktri.Config{World: blocktri.NewWorld(8)})
			if err := ard.Factor(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Solve", func(b *testing.B) {
		ard := blocktri.NewARD(a, blocktri.Config{World: blocktri.NewWorld(8)})
		if err := ard.Factor(); err != nil {
			b.Fatal(err)
		}
		solveLoop(b, ard, rhs)
	})
}

// E9: scan-schedule ablation for RD.
func BenchmarkE9_Ablation(b *testing.B) {
	defer quietKernels()()
	a := benchMatrix(1024, 8)
	rhs := benchRHS(a, 1, 10)
	for _, sched := range []blocktri.Schedule{prefix.KoggeStone, prefix.BrentKung, prefix.Chain} {
		b.Run(sched.String(), func(b *testing.B) {
			rd := blocktri.NewRD(a, blocktri.Config{World: blocktri.NewWorld(8), Schedule: sched})
			solveLoop(b, rd, rhs)
		})
	}
}

// E10: model validation — the benchmark time is the measured side; the
// model's flop prediction is attached as a metric for comparison.
func BenchmarkE10_ModelValidation(b *testing.B) {
	defer quietKernels()()
	prm := costmodel.Params{N: 256, M: 8, P: 4, R: 1}
	a := benchMatrix(prm.N, prm.M)
	rhs := benchRHS(a, prm.R, 11)
	b.Run("RD", func(b *testing.B) {
		rd := blocktri.NewRD(a, blocktri.Config{World: blocktri.NewWorld(prm.P)})
		solveLoop(b, rd, rhs)
		b.ReportMetric(float64(costmodel.RDSolve(prm).Flops), "modelflops/op")
	})
	b.Run("ARD", func(b *testing.B) {
		ard := blocktri.NewARD(a, blocktri.Config{World: blocktri.NewWorld(prm.P)})
		if err := ard.Factor(); err != nil {
			b.Fatal(err)
		}
		solveLoop(b, ard, rhs)
		b.ReportMetric(float64(costmodel.ARDSolve(prm).Flops), "modelflops/op")
	})
}

// E11: ARD vs the SPIKE partition method (the stable alternative).
func BenchmarkE11_SpikeVsARD(b *testing.B) {
	defer quietKernels()()
	a := benchMatrix(512, 16)
	rhs := benchRHS(a, 1, 14)
	b.Run("ARDSolve", func(b *testing.B) {
		ard := blocktri.NewARD(a, blocktri.Config{World: blocktri.NewWorld(8)})
		if err := ard.Factor(); err != nil {
			b.Fatal(err)
		}
		solveLoop(b, ard, rhs)
	})
	b.Run("SpikeSolve", func(b *testing.B) {
		sp := blocktri.NewSpike(a, blocktri.Config{World: blocktri.NewWorld(8)})
		if err := sp.Factor(); err != nil {
			b.Fatal(err)
		}
		solveLoop(b, sp, rhs)
	})
	b.Run("SpikeFactor", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sp := blocktri.NewSpike(a, blocktri.Config{World: blocktri.NewWorld(8)})
			if err := sp.Factor(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Substrate microbenchmarks: the dense kernels every solver sits on.
// Square shapes cover the dispatch tiers; the m=32,k=32 skinny panels are
// the shapes the panelized ARD solve phase issues per transfer half.
func BenchmarkKernelGEMM(b *testing.B) {
	shapes := []struct{ m, k, n int }{
		{16, 16, 16}, {32, 32, 32}, {64, 64, 64}, {128, 128, 128},
		{32, 32, 64}, {32, 32, 256},
	}
	for _, sh := range shapes {
		rng := rand.New(rand.NewSource(12))
		x, y, z := mat.Random(sh.m, sh.k, rng), mat.Random(sh.k, sh.n, rng), mat.New(sh.m, sh.n)
		name := fmt.Sprintf("n=%d", sh.n)
		if sh.m != sh.n {
			name = fmt.Sprintf("m=%d,k=%d,n=%d", sh.m, sh.k, sh.n)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mat.Mul(z, x, y)
			}
			b.ReportMetric(2*float64(sh.m)*float64(sh.k)*float64(sh.n), "flops/op")
		})
	}
}

func BenchmarkKernelLU(b *testing.B) {
	for _, n := range []int{16, 32, 64} {
		rng := rand.New(rand.NewSource(13))
		a := mat.RandomDiagDominant(n, 1, rng)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mat.Factor(a); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// quietKernels disables nested GEMM parallelism during benchmarks.
func quietKernels() func() {
	old := mat.ParallelEnabled()
	mat.SetParallel(false)
	return func() { mat.SetParallel(old) }
}

// Guard: the benchmark workload must be numerically sane, otherwise the
// timings would measure Inf/NaN propagation instead of real arithmetic.
func TestBenchmarkWorkloadSanity(t *testing.T) {
	a := benchMatrix(512, 16)
	rhs := benchRHS(a, 1, 2)
	ard := blocktri.NewARD(a, blocktri.Config{World: blocktri.NewWorld(8)})
	x, err := ard.Solve(rhs)
	if err != nil {
		t.Fatal(err)
	}
	if rr := a.RelResidual(x, rhs); rr > 1e-9 {
		t.Fatalf("benchmark workload residual %v too large", rr)
	}
}

// E13: every solver's per-solve cost at the landscape configuration.
func BenchmarkE13_Landscape(b *testing.B) {
	defer quietKernels()()
	a := benchMatrix(512, 16)
	rhs := benchRHS(a, 1, 20)
	b.Run("Thomas", func(b *testing.B) {
		th := blocktri.NewThomas(a)
		if err := th.Factor(); err != nil {
			b.Fatal(err)
		}
		solveLoop(b, th, rhs)
	})
	b.Run("PCRSolve", func(b *testing.B) {
		pcr := blocktri.NewPCR(a, blocktri.Config{World: blocktri.NewWorld(8)})
		if err := pcr.Factor(); err != nil {
			b.Fatal(err)
		}
		solveLoop(b, pcr, rhs)
	})
	b.Run("BCR", func(b *testing.B) {
		solveLoop(b, blocktri.NewBCR(a), rhs)
	})
}

// BenchmarkARDSolve is the perf-regression anchor for the allocation-free
// solve path (cmd/blocktri-bench -perf tracks the same configuration): the
// headline N=512, M=16, P=8 system solved into a reused destination for a
// single right-hand side and for panelized batches of 64 and 256. After the
// warm-up solve the path performs zero heap allocations per op.
func BenchmarkARDSolve(b *testing.B) {
	defer quietKernels()()
	a := benchMatrix(512, 16)
	ard := blocktri.NewARD(a, blocktri.Config{World: blocktri.NewWorld(8)})
	if err := ard.Factor(); err != nil {
		b.Fatal(err)
	}
	for _, r := range []int{1, 64, 256} {
		b.Run(fmt.Sprintf("R=%d", r), func(b *testing.B) {
			rhs := benchRHS(a, r, 2)
			x := blocktri.NewDenseMatrix(rhs.Rows, rhs.Cols)
			if err := ard.SolveTo(x, rhs); err != nil { // warm the arenas
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ard.SolveTo(x, rhs); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(ard.Stats().Flops), "flops/op")
		})
	}
}
