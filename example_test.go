package blocktri_test

import (
	"fmt"
	"math/rand"

	"blocktri"
)

// The examples below are compiled and run by `go test`; they document the
// intended call patterns of the public API.

func ExampleNewARD() {
	// Factor once, then solve many right-hand sides cheaply.
	a := blocktri.NewAnisotropicDiffusion(8, 32, 0.02)
	ard := blocktri.NewARD(a, blocktri.Config{World: blocktri.NewWorld(4)})
	if err := ard.Factor(); err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(1))
	for step := 0; step < 3; step++ {
		b := a.RandomRHS(1, rng)
		x, err := ard.Solve(b)
		if err != nil {
			panic(err)
		}
		fmt.Printf("step %d: residual below 1e-9: %v\n", step, a.RelResidual(x, b) < 1e-9)
	}
	// Output:
	// step 0: residual below 1e-9: true
	// step 1: residual below 1e-9: true
	// step 2: residual below 1e-9: true
}

func ExampleNewAuto() {
	// A strongly diagonally dominant matrix is outside recursive
	// doubling's stable regime; Auto detects this from the measured
	// prefix growth and falls back to a stable solver.
	rng := rand.New(rand.NewSource(2))
	a := blocktri.NewRandomDiagDominant(32, 4, rng)
	auto := blocktri.NewAuto(a, blocktri.Config{World: blocktri.NewWorld(4)}, blocktri.AutoOptions{})
	b := a.RandomRHS(1, rng)
	x, err := auto.Solve(b)
	if err != nil {
		panic(err)
	}
	fmt.Println("solver:", auto.Name())
	fmt.Println("accurate:", a.RelResidual(x, b) < 1e-10)
	// Output:
	// solver: auto(spike)
	// accurate: true
}

func ExampleSolveRefined() {
	// On a moderately growing system, iterative refinement recovers the
	// digits plain ARD loses.
	rng := rand.New(rand.NewSource(3))
	a := blocktri.NewRandomDiagDominant(16, 4, rng)
	ard := blocktri.NewARD(a, blocktri.Config{World: blocktri.NewWorld(2)})
	b := a.RandomRHS(1, rng)
	x, rep, err := blocktri.SolveRefined(ard, b, 3)
	if err != nil {
		panic(err)
	}
	fmt.Println("improved:", rep.Improved())
	fmt.Println("machine precision:", a.RelResidual(x, b) < 1e-12)
	// Output:
	// improved: true
	// machine precision: true
}
