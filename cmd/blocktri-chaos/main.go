// Command blocktri-chaos runs the fault-injection campaign: every solver
// under randomized seeded fault plans, asserting the resilience invariant
// — a correct solution or a clean typed error, never a hang, never an
// escaped panic, never a silent wrong answer.
//
// Usage:
//
//	blocktri-chaos -seed 1 -plans 32        # the CI smoke configuration
//	blocktri-chaos -plans 200 -v            # a longer soak, one line per trial
//	blocktri-chaos -solvers ard,spike       # restrict to a solver subset
//	blocktri-chaos -service                 # service-level campaign (blocktri-serve)
//	blocktri-chaos -trial-budget 5s         # flag any trial over five seconds
//
// Exit status 0 when the invariant held across every trial, 1 otherwise.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"blocktri/internal/chaos"
)

func main() {
	seed := flag.Int64("seed", 1, "campaign seed (same seed, same plans)")
	plans := flag.Int("plans", 32, "number of randomized fault plans")
	maxP := flag.Int("p", 6, "maximum world size")
	maxN := flag.Int("n", 12, "maximum extra block rows beyond 2*P")
	maxM := flag.Int("m", 3, "maximum block size")
	tol := flag.Float64("tol", 1e-8, "relative-residual bound for a solve to count as correct")
	solvers := flag.String("solvers", "", "comma-separated solver subset (default: all)")
	budget := flag.Duration("trial-budget", chaos.DefaultTrialBudget,
		"wall-clock budget per trial; an overrun names the scenario and fails the run (negative disables)")
	service := flag.Bool("service", false, "run the service-level campaign (concurrent tenants vs a fault-injected blocktri-serve) instead of the solver campaign")
	tenants := flag.Int("tenants", 5, "service mode: concurrent tenants")
	requests := flag.Int("requests", 120, "service mode: total requests")
	verbose := flag.Bool("v", false, "log one line per trial")
	flag.Parse()

	var logw io.Writer
	if *verbose {
		logw = os.Stdout
	}
	if *service {
		runService(*seed, *tenants, *requests, logw)
		return
	}

	opts := chaos.Options{
		Seed: *seed, Plans: *plans,
		MaxP: *maxP, MaxN: *maxN, MaxM: *maxM,
		Tol: *tol, TrialBudget: *budget,
	}
	if *solvers != "" {
		known := make(map[string]bool, len(chaos.SolverNames))
		for _, s := range chaos.SolverNames {
			known[s] = true
		}
		for _, s := range strings.Split(*solvers, ",") {
			s = strings.TrimSpace(s)
			if !known[s] {
				fmt.Fprintf(os.Stderr, "blocktri-chaos: unknown solver %q (have %s)\n",
					s, strings.Join(chaos.SolverNames, ", "))
				os.Exit(2)
			}
			opts.Solvers = append(opts.Solvers, s)
		}
	}
	opts.Log = logw

	rep := chaos.Run(opts)
	fmt.Printf("blocktri-chaos: seed=%d plans=%d trials=%d solved=%d typed-errors=%d violations=%d overruns=%d\n",
		*seed, *plans, len(rep.Trials), rep.Solved, rep.TypedErrs, len(rep.Violations), len(rep.Overruns))
	if !rep.Ok() {
		for _, v := range rep.Violations {
			fmt.Printf("  VIOLATION %s: %s\n", v.Scenario(), v.Detail)
		}
		for _, v := range rep.Overruns {
			fmt.Printf("  OVERRUN %s: took %v (budget %v)\n",
				v.Scenario(), v.Wall.Round(time.Millisecond), *budget)
		}
		os.Exit(1)
	}
	fmt.Println("invariant held: every trial ended in a correct solution or a clean typed error within budget")
}

// runService executes the service-level campaign and exits with its status.
func runService(seed int64, tenants, requests int, logw io.Writer) {
	opts := chaos.DefaultServiceOptions(seed)
	opts.Tenants = tenants
	opts.Requests = requests
	opts.Log = logw
	rep := chaos.RunService(opts)
	fmt.Printf("blocktri-chaos -service: seed=%d tenants=%d requests=%d solved=%d (warm=%d boosted=%d) typed-errors=%d (shed=%d deadlined=%d circuit=%d) violations=%d wall=%v\n",
		seed, tenants, rep.Requests, rep.Solved, rep.Warm, rep.Boosted,
		rep.TypedErrs, rep.Shed, rep.Deadlined, rep.Circuit,
		len(rep.Violations), rep.Wall.Round(time.Millisecond))
	if !rep.Ok() {
		for _, v := range rep.Violations {
			fmt.Printf("  VIOLATION %s\n", v)
		}
		os.Exit(1)
	}
	fmt.Println("service invariant held: every request ended in a correct solution or a clean typed error, no leaks, no stalls")
}
