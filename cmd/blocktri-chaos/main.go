// Command blocktri-chaos runs the fault-injection campaign: every solver
// under randomized seeded fault plans, asserting the resilience invariant
// — a correct solution or a clean typed error, never a hang, never an
// escaped panic, never a silent wrong answer.
//
// Usage:
//
//	blocktri-chaos -seed 1 -plans 32        # the CI smoke configuration
//	blocktri-chaos -plans 200 -v            # a longer soak, one line per trial
//	blocktri-chaos -solvers ard,spike       # restrict to a solver subset
//
// Exit status 0 when the invariant held across every trial, 1 otherwise.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"blocktri/internal/chaos"
)

func main() {
	seed := flag.Int64("seed", 1, "campaign seed (same seed, same plans)")
	plans := flag.Int("plans", 32, "number of randomized fault plans")
	maxP := flag.Int("p", 6, "maximum world size")
	maxN := flag.Int("n", 12, "maximum extra block rows beyond 2*P")
	maxM := flag.Int("m", 3, "maximum block size")
	tol := flag.Float64("tol", 1e-8, "relative-residual bound for a solve to count as correct")
	solvers := flag.String("solvers", "", "comma-separated solver subset (default: all)")
	verbose := flag.Bool("v", false, "log one line per trial")
	flag.Parse()

	opts := chaos.Options{
		Seed: *seed, Plans: *plans,
		MaxP: *maxP, MaxN: *maxN, MaxM: *maxM,
		Tol: *tol,
	}
	if *solvers != "" {
		known := make(map[string]bool, len(chaos.SolverNames))
		for _, s := range chaos.SolverNames {
			known[s] = true
		}
		for _, s := range strings.Split(*solvers, ",") {
			s = strings.TrimSpace(s)
			if !known[s] {
				fmt.Fprintf(os.Stderr, "blocktri-chaos: unknown solver %q (have %s)\n",
					s, strings.Join(chaos.SolverNames, ", "))
				os.Exit(2)
			}
			opts.Solvers = append(opts.Solvers, s)
		}
	}
	var logw io.Writer
	if *verbose {
		logw = os.Stdout
	}
	opts.Log = logw

	rep := chaos.Run(opts)
	fmt.Printf("blocktri-chaos: seed=%d plans=%d trials=%d solved=%d typed-errors=%d violations=%d\n",
		*seed, *plans, len(rep.Trials), rep.Solved, rep.TypedErrs, len(rep.Violations))
	if !rep.Ok() {
		for _, v := range rep.Violations {
			fmt.Printf("  VIOLATION plan %d solver %s (P=%d N=%d M=%d): %s\n",
				v.Plan, v.Solver, v.P, v.N, v.M, v.Detail)
		}
		os.Exit(1)
	}
	fmt.Println("invariant held: every trial ended in a correct solution or a clean typed error")
}
