// Command blocktri-solve builds (or loads) a block tridiagonal system,
// solves it with the selected algorithm, and reports the residual, timing
// and instrumentation.
//
// Usage:
//
//	blocktri-solve -family oscillatory -n 512 -m 16 -p 8 -r 4 -solver ard
//	blocktri-solve -in system.btd -solver thomas
//	blocktri-solve -family poisson-2d -n 128 -m 64 -save system.btd
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"blocktri/internal/blocktri"
	"blocktri/internal/comm"
	"blocktri/internal/core"
	"blocktri/internal/workload"
)

func main() {
	family := flag.String("family", "oscillatory", "problem family: random-dd | oscillatory | poisson-2d | convection-diffusion | block-toeplitz")
	n := flag.Int("n", 256, "number of block rows")
	m := flag.Int("m", 8, "block size")
	p := flag.Int("p", 4, "number of ranks")
	r := flag.Int("r", 1, "right-hand-side columns")
	seed := flag.Int64("seed", 1, "generator seed")
	solverName := flag.String("solver", "ard", "solver: dense | thomas | bcr | rd | ard | spike | pcr | auto")
	in := flag.String("in", "", "read the matrix from this file instead of generating")
	save := flag.String("save", "", "write the generated matrix to this file and exit")
	solves := flag.Int("solves", 1, "number of sequential solves with fresh right-hand sides")
	saveFactor := flag.String("save-factor", "", "persist the ARD factorization to this file after solving")
	loadFactor := flag.String("load-factor", "", "restore an ARD factorization from this file (solver must be ard)")
	flag.Parse()

	a, err := buildMatrix(*in, *family, *n, *m, *seed)
	if err != nil {
		fatal(err)
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fatal(err)
		}
		if _, err := a.WriteTo(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (N=%d M=%d)\n", *save, a.N, a.M)
		return
	}

	s, err := buildSolver(*solverName, a, *p)
	if err != nil {
		fatal(err)
	}
	if *loadFactor != "" {
		if *solverName != "ard" {
			fatal(fmt.Errorf("-load-factor requires -solver ard"))
		}
		f, err := os.Open(*loadFactor)
		if err != nil {
			fatal(err)
		}
		ard, err := core.LoadFactor(a, core.Config{World: comm.NewWorld(*p)}, f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		s = ard
		fmt.Printf("restored factorization from %s (%d bytes retained)\n",
			*loadFactor, ard.FactorStats().StoredBytes)
	}
	fmt.Printf("system: N=%d M=%d (%d unknowns), solver=%s, P=%d, R=%d, solves=%d\n",
		a.N, a.M, a.N*a.M, s.Name(), *p, *r, *solves)
	if rate := core.EstimateGrowth(a, 8); rate > 0 {
		fmt.Printf("estimated recurrence growth rate: %.3g per row (RD/ARD error ~ rate^N * 1e-16)\n", rate)
	}

	stream := workload.NewRHSStream(a, *r, *seed+1)
	start := time.Now()
	var worstResidual float64
	for i := 0; i < *solves; i++ {
		b := stream.Next()
		x, err := s.Solve(b)
		if err != nil {
			fatal(err)
		}
		if rr := a.RelResidual(x, b); rr > worstResidual {
			worstResidual = rr
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("total time: %v (%v per solve)\n", elapsed, elapsed/time.Duration(*solves))
	fmt.Printf("worst relative residual: %.3e\n", worstResidual)

	type statser interface{ Stats() core.SolveStats }
	if st, ok := s.(statser); ok {
		stats := st.Stats()
		fmt.Printf("last solve: flops=%d maxRankFlops=%d msgs=%d bytes=%d simCommMax=%.3es\n",
			stats.Flops, stats.MaxRankFlops, stats.Comm.MsgsSent, stats.Comm.BytesSent, stats.MaxSimComm)
	}
	if auto, ok := s.(*core.Auto); ok {
		fmt.Printf("auto selection: %s\n", auto.Reason())
	}
	if ard, ok := s.(*core.ARD); ok {
		fs := ard.FactorStats()
		fmt.Printf("factor phase: flops=%d wall=%v stored=%dB growth=%.3g\n",
			fs.Flops, fs.Wall, fs.StoredBytes, fs.PrefixGrowth)
		if *saveFactor != "" {
			f, err := os.Create(*saveFactor)
			if err != nil {
				fatal(err)
			}
			n, err := ard.SaveFactor(f)
			if err == nil {
				err = f.Close()
			} else {
				f.Close()
			}
			if err != nil {
				fatal(err)
			}
			fmt.Printf("saved factorization to %s (%d bytes)\n", *saveFactor, n)
		}
	}
}

func buildMatrix(in, family string, n, m int, seed int64) (*blocktri.Matrix, error) {
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return blocktri.Read(f)
	}
	for _, fam := range workload.Families {
		if fam.String() == family {
			return workload.Build(fam, n, m, seed), nil
		}
	}
	if family == "random" { // convenience alias
		return blocktri.RandomDiagDominant(n, m, rand.New(rand.NewSource(seed))), nil
	}
	return nil, fmt.Errorf("unknown family %q", family)
}

func buildSolver(name string, a *blocktri.Matrix, p int) (core.Solver, error) {
	cfg := core.Config{World: comm.NewWorld(p)}
	switch name {
	case "dense":
		return core.NewDense(a), nil
	case "thomas":
		return core.NewThomas(a), nil
	case "bcr":
		return core.NewBCR(a), nil
	case "rd":
		return core.NewRD(a, cfg), nil
	case "ard":
		return core.NewARD(a, cfg), nil
	case "spike":
		return core.NewSpike(a, cfg), nil
	case "pcr":
		return core.NewPCR(a, cfg), nil
	case "auto":
		return core.NewAuto(a, cfg, core.AutoOptions{}), nil
	default:
		return nil, fmt.Errorf("unknown solver %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "blocktri-solve: %v\n", err)
	os.Exit(1)
}
