// Command blocktri-verify cross-checks every solver against the dense LU
// reference over a sweep of problem families, shapes and rank counts, and
// additionally checks that ARD(Factor+Solve) is bit-identical to RD. It
// exits nonzero if any check fails.
//
// Usage:
//
//	blocktri-verify            # standard sweep
//	blocktri-verify -trials 50 # more random trials
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"blocktri/internal/comm"
	"blocktri/internal/core"
	"blocktri/internal/mat"
	"blocktri/internal/workload"
)

func main() {
	trials := flag.Int("trials", 20, "random configurations per family")
	seed := flag.Int64("seed", 1, "sweep seed")
	tol := flag.Float64("tol", 1e-6, "acceptable relative residual for direct solvers")
	growthEps := flag.Float64("growth-eps", 1e-13, "per-unit-growth error budget for the prefix-based solvers (RD/ARD): their bound is tol + growth-eps * PrefixGrowth, the standard forward-error model for transfer-matrix recursive doubling")
	maxN := flag.Int("max-n", 24, "largest N in the random sweep")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	failures := 0
	checks := 0
	for _, fam := range workload.Families {
		for trial := 0; trial < *trials; trial++ {
			n := 1 + rng.Intn(*maxN)
			m := 1 + rng.Intn(5)
			p := 1 + rng.Intn(6)
			r := 1 + rng.Intn(3)
			a := workload.Build(fam, n, m, rng.Int63())
			b := a.RandomRHS(r, rng)

			ref, err := core.NewDense(a).Solve(b)
			if err != nil {
				fmt.Printf("FAIL %s N=%d M=%d: dense reference failed: %v\n", fam, n, m, err)
				failures++
				continue
			}
			var rdX *mat.Matrix
			solvers := []core.Solver{
				core.NewThomas(a),
				core.NewBCR(a),
				core.NewRD(a, core.Config{World: comm.NewWorld(p)}),
				core.NewARD(a, core.Config{World: comm.NewWorld(p)}),
			}
			solvers = append(solvers, core.NewPCR(a, core.Config{World: comm.NewWorld(p)}))
			solvers = append(solvers, core.NewAuto(a, core.Config{World: comm.NewWorld(p)}, core.AutoOptions{}))
			if n >= 2*p {
				solvers = append(solvers, core.NewSpike(a, core.Config{World: comm.NewWorld(p)}))
			}
			for _, s := range solvers {
				checks++
				x, err := s.Solve(b)
				if err != nil {
					fmt.Printf("FAIL %s N=%d M=%d P=%d R=%d %s: %v\n", fam, n, m, p, r, s.Name(), err)
					failures++
					continue
				}
				// Transfer-matrix recursive doubling amplifies rounding by
				// the growth of its prefix products (reported by the
				// solvers as PrefixGrowth), so its residual bound scales
				// with that growth — the standard forward-error model.
				// Direct solvers are held to the flat tolerance. E6
				// quantifies the growth per family.
				bound := *tol
				switch st := s.(type) {
				case *core.RD:
					bound += *growthEps * st.Stats().PrefixGrowth
				case *core.ARD:
					bound += *growthEps * st.Stats().PrefixGrowth
				case *core.Auto:
					if ard, ok := st.Chosen().(*core.ARD); ok {
						bound += *growthEps * ard.Stats().PrefixGrowth
					}
				}
				if rr := a.RelResidual(x, b); rr > bound {
					fmt.Printf("FAIL %s N=%d M=%d P=%d R=%d %s: residual %.3e > %.1e\n",
						fam, n, m, p, r, s.Name(), rr, bound)
					failures++
				}
				switch s.Name() {
				case "recursive-doubling":
					rdX = x
				case "accelerated-recursive-doubling":
					if rdX != nil && !x.Equal(rdX) {
						fmt.Printf("FAIL %s N=%d M=%d P=%d R=%d: ARD not bit-identical to RD\n",
							fam, n, m, p, r)
						failures++
					}
				}
				_ = ref
			}
		}
	}
	fmt.Printf("\n%d checks, %d failures\n", checks, failures)
	if failures > 0 {
		os.Exit(1)
	}
}
