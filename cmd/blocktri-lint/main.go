// Command blocktri-lint runs the module's domain static-analysis suite
// (internal/analysis). The syntactic analyzers — matalias, commlock,
// commtag, floateq, panicpolicy, hotalloc — are joined by flow-sensitive
// ones built on the dataflow engine: wsescape (arena-lifetime), poolrelease
// (pooled-buffer leaks), errdiscard (dropped error results), commshape
// (SPMD send/recv pairing) and blockshape (symbolic block-dimension
// conformance of mat call sites). The flow-sensitive analyzers consult
// interprocedural function summaries computed bottom-up over a per-package
// call graph; -interprocedural=false turns the layer off. Lint:ignore
// directives are themselves audited (the "suppress" pseudo-analyzer) when
// the full suite runs. The tool loads and type-checks the whole module from
// source using only the standard library, reports findings as
//
//	file:line: [analyzer] message
//
// (or as JSON / SARIF 2.1.0 with -format), and exits nonzero if any finding
// survives suppression ("//lint:ignore <analyzer> reason" on or above the
// offending line).
//
// Usage:
//
//	blocktri-lint ./...             # lint the whole module (the default)
//	blocktri-lint -floateq=false ./...
//	blocktri-lint -only commshape ./...
//	blocktri-lint -interprocedural=false ./...
//	blocktri-lint -format json -stats ./...
//	blocktri-lint -format sarif ./... > lint.sarif
//	blocktri-lint -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"blocktri/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("blocktri-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)

	analyzers := analysis.Analyzers()
	enabled := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		enabled[a.Name] = fs.Bool(a.Name, true, "enable the "+a.Name+" analyzer ("+a.Doc+")")
	}
	only := fs.String("only", "", "comma-separated list of analyzers to run (overrides the per-analyzer flags)")
	list := fs.Bool("list", false, "list analyzers and exit")
	format := fs.String("format", "text", "output format: text, json or sarif")
	verbose := fs.Bool("v", false, "also report how many findings were suppressed")
	interp := fs.Bool("interprocedural", true, "consult function summaries (call graph + interprocedural facts); -interprocedural=false reverts every analyzer to its intraprocedural behavior")
	stats := fs.Bool("stats", false, "print per-analyzer timing and summary-cache statistics to stderr after the run")
	checkSup := fs.Bool("suppress", true, "audit lint:ignore directives for typos and staleness (full-suite runs only)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s [%s] %s\n", a.Name, a.Severity, a.Doc)
		}
		fmt.Fprintf(stdout, "%-12s [%s] %s\n", analysis.SuppressName, analysis.SeverityWarning,
			"audit lint:ignore directives for typos and staleness")
		return 0
	}

	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(stderr, "blocktri-lint: unknown format %q (use text, json or sarif)\n", *format)
		return 2
	}

	// The loader always analyzes the whole module containing the working
	// directory; "./..." is accepted for familiarity, anything narrower is
	// not supported.
	for _, arg := range fs.Args() {
		if arg != "./..." && arg != "." {
			fmt.Fprintf(stderr, "blocktri-lint: only module-wide runs are supported; got %q (use ./...)\n", arg)
			return 2
		}
	}

	if *only != "" {
		selected := make(map[string]bool)
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			if _, ok := enabled[name]; !ok {
				fmt.Fprintf(stderr, "blocktri-lint: unknown analyzer %q (use -list)\n", name)
				return 2
			}
			selected[name] = true
		}
		for name, on := range enabled {
			*on = selected[name]
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "blocktri-lint: %v\n", err)
		return 2
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintf(stderr, "blocktri-lint: %v\n", err)
		return 2
	}
	m, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintf(stderr, "blocktri-lint: %v\n", err)
		return 2
	}
	m.NoInterp = !*interp
	sup := analysis.CollectSuppressions(m)

	var findings []analysis.Finding
	var ran []*analysis.Analyzer
	var timings []time.Duration
	known := make(map[string]bool, len(analyzers))
	suppressed, allRan := 0, true
	for _, a := range analyzers {
		if !*enabled[a.Name] {
			allRan = false
			continue
		}
		ran = append(ran, a)
		known[a.Name] = true
		start := time.Now()
		all := a.Run(m)
		timings = append(timings, time.Since(start))
		kept := analysis.FilterSuppressed(all, sup)
		suppressed += len(all) - len(kept)
		findings = append(findings, kept...)
	}
	// The directive audit is only sound when every analyzer ran: a directive
	// for a disabled analyzer is not stale, just untested this run.
	if *checkSup && allRan {
		findings = append(findings, sup.Unused(known)...)
	}
	analysis.SortFindings(findings)

	switch *format {
	case "json":
		report := analysis.JSONInterp{Enabled: !m.NoInterp, Summaries: m.SummaryStats()}
		if err := analysis.WriteJSON(stdout, findings, cwd, report); err != nil {
			fmt.Fprintf(stderr, "blocktri-lint: %v\n", err)
			return 2
		}
	case "sarif":
		if err := analysis.WriteSARIF(stdout, ran, findings, cwd); err != nil {
			fmt.Fprintf(stderr, "blocktri-lint: %v\n", err)
			return 2
		}
	default:
		for _, f := range findings {
			name := f.Pos.Filename
			if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
			fmt.Fprintf(stdout, "%s:%d: [%s] %s\n", name, f.Pos.Line, f.Analyzer, f.Message)
		}
	}
	if *verbose && suppressed > 0 {
		fmt.Fprintf(stderr, "blocktri-lint: %d finding(s) suppressed by lint:ignore directives\n", suppressed)
	}
	if *stats {
		for i, a := range ran {
			fmt.Fprintf(stderr, "blocktri-lint: %-12s %10.1fms\n", a.Name, float64(timings[i].Microseconds())/1000)
		}
		s := m.SummaryStats()
		hitRate := 0.0
		if s.Requests > 0 {
			hitRate = 100 * float64(s.CacheHits) / float64(s.Requests)
		}
		fmt.Fprintf(stderr, "blocktri-lint: summaries: %d function(s), %d call edge(s), %d SCC(s) (largest %d), %d fixpoint iteration(s); %d package(s) computed, %d request(s), %d cache hit(s) (%.1f%% hit rate)\n",
			s.Functions, s.CallEdges, s.SCCs, s.LargestSCC, s.FixpointIterations,
			s.PackagesComputed, s.Requests, s.CacheHits, hitRate)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "blocktri-lint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
