// Command blocktri-lint runs the module's domain static-analysis suite
// (internal/analysis). The syntactic analyzers — matalias, commlock,
// commtag, floateq, panicpolicy, hotalloc — are joined by four
// flow-sensitive ones built on the intraprocedural dataflow engine:
// wsescape (arena-lifetime), poolrelease (pooled-buffer leaks), errdiscard
// (dropped error results) and commshape (SPMD send/recv pairing). It loads
// and type-checks the whole module from source using only the standard
// library, reports findings as
//
//	file:line: [analyzer] message
//
// (or as JSON / SARIF 2.1.0 with -format), and exits nonzero if any finding
// survives suppression ("//lint:ignore <analyzer> reason" on or above the
// offending line).
//
// Usage:
//
//	blocktri-lint ./...             # lint the whole module (the default)
//	blocktri-lint -floateq=false ./...
//	blocktri-lint -only commshape ./...
//	blocktri-lint -format sarif ./... > lint.sarif
//	blocktri-lint -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"blocktri/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("blocktri-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)

	analyzers := analysis.Analyzers()
	enabled := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		enabled[a.Name] = fs.Bool(a.Name, true, "enable the "+a.Name+" analyzer ("+a.Doc+")")
	}
	only := fs.String("only", "", "comma-separated list of analyzers to run (overrides the per-analyzer flags)")
	list := fs.Bool("list", false, "list analyzers and exit")
	format := fs.String("format", "text", "output format: text, json or sarif")
	verbose := fs.Bool("v", false, "also report how many findings were suppressed")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(stderr, "blocktri-lint: unknown format %q (use text, json or sarif)\n", *format)
		return 2
	}

	// The loader always analyzes the whole module containing the working
	// directory; "./..." is accepted for familiarity, anything narrower is
	// not supported.
	for _, arg := range fs.Args() {
		if arg != "./..." && arg != "." {
			fmt.Fprintf(stderr, "blocktri-lint: only module-wide runs are supported; got %q (use ./...)\n", arg)
			return 2
		}
	}

	if *only != "" {
		selected := make(map[string]bool)
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			if _, ok := enabled[name]; !ok {
				fmt.Fprintf(stderr, "blocktri-lint: unknown analyzer %q (use -list)\n", name)
				return 2
			}
			selected[name] = true
		}
		for name, on := range enabled {
			*on = selected[name]
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "blocktri-lint: %v\n", err)
		return 2
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintf(stderr, "blocktri-lint: %v\n", err)
		return 2
	}
	m, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintf(stderr, "blocktri-lint: %v\n", err)
		return 2
	}
	sup := analysis.CollectSuppressions(m)

	var findings []analysis.Finding
	var ran []*analysis.Analyzer
	suppressed := 0
	for _, a := range analyzers {
		if !*enabled[a.Name] {
			continue
		}
		ran = append(ran, a)
		all := a.Run(m)
		kept := analysis.FilterSuppressed(all, sup)
		suppressed += len(all) - len(kept)
		findings = append(findings, kept...)
	}
	analysis.SortFindings(findings)

	switch *format {
	case "json":
		if err := analysis.WriteJSON(stdout, findings, cwd); err != nil {
			fmt.Fprintf(stderr, "blocktri-lint: %v\n", err)
			return 2
		}
	case "sarif":
		if err := analysis.WriteSARIF(stdout, ran, findings, cwd); err != nil {
			fmt.Fprintf(stderr, "blocktri-lint: %v\n", err)
			return 2
		}
	default:
		for _, f := range findings {
			name := f.Pos.Filename
			if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
			fmt.Fprintf(stdout, "%s:%d: [%s] %s\n", name, f.Pos.Line, f.Analyzer, f.Message)
		}
	}
	if *verbose && suppressed > 0 {
		fmt.Fprintf(stderr, "blocktri-lint: %d finding(s) suppressed by lint:ignore directives\n", suppressed)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "blocktri-lint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
