// Command blocktri-lint runs the module's domain static-analysis suite
// (internal/analysis). The syntactic analyzers — matalias, commlock,
// commtag, floateq, panicpolicy, hotalloc — are joined by flow-sensitive
// ones built on the dataflow engine: wsescape (arena-lifetime), poolrelease
// (pooled-buffer leaks), errdiscard (dropped error results), commshape
// (SPMD send/recv pairing) and blockshape (symbolic block-dimension
// conformance of mat call sites), plus the concurrency-safety trio: goleak
// (goroutines with no termination tie), lockorder (lock-order cycles and
// blocking while locked) and ctxflow (context forwarding and cancel
// obligations), plus the performance-contract layer: perfescape, perfbce
// and perfinline check //perf: annotations against the compiler's own
// escape/BCE/inlining evidence (one go build -gcflags='-m=2
// -d=ssa/check_bce' per module, cached), and asmcheck verifies the
// hand-written AVX-512 kernels against their Go declarations without any
// build. The flow-sensitive analyzers consult interprocedural
// function summaries computed bottom-up over a per-package call graph;
// -interprocedural=false turns the layer off. Lint:ignore directives are
// themselves audited (the "suppress" pseudo-analyzer) when the full suite
// runs.
//
// Runs are incremental by default: per-package findings, directives and
// function summaries persist in a content-addressed cache
// (<module>/.blocktri-lint-cache, see -cache-dir / -no-cache), and only
// packages whose cache key changed — their own files, a dependency, the
// toolchain or the analyzer configuration — are re-parsed, re-type-checked
// and re-analyzed. A fully warm run replays findings byte-identically
// without type-checking anything. -watch keeps the process alive, polls the
// tree for changes, re-lints incrementally and prints only the delta.
//
// Findings are reported as
//
//	file:line: [analyzer] message
//
// (or as JSON / SARIF 2.1.0 via -format, which accepts a comma-separated
// list; -sarif-out redirects the SARIF stream to a file so one invocation
// can gate on text and archive SARIF). The tool exits nonzero if any
// finding survives suppression ("//lint:ignore <analyzer> reason" on or
// above the offending line).
//
// Usage:
//
//	blocktri-lint ./...             # lint the whole module (the default)
//	blocktri-lint -floateq=false ./...
//	blocktri-lint -only commshape ./...
//	blocktri-lint -analyzers goleak,lockorder,ctxflow ./...
//	blocktri-lint -interprocedural=false ./...
//	blocktri-lint -format json -stats ./...
//	blocktri-lint -format text,sarif -sarif-out reports/lint.sarif ./...
//	blocktri-lint -no-cache ./...   # force a cold run, persist nothing
//	blocktri-lint -watch ./...
//	blocktri-lint -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"blocktri/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// watchHooks lets tests drive the -watch loop deterministically: stop ends
// the loop (as an interrupt would), and iterated reports each completed poll
// cycle. Both are nil outside tests.
type watchHooks struct {
	stop     chan struct{}
	iterated chan struct{}
}

var testWatch *watchHooks

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("blocktri-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)

	analyzers := analysis.Analyzers()
	enabled := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		enabled[a.Name] = fs.Bool(a.Name, true, "enable the "+a.Name+" analyzer ("+a.Doc+")")
	}
	only := fs.String("only", "", "comma-separated list of analyzers to run (overrides the per-analyzer flags)")
	subset := fs.String("analyzers", "", "comma-separated subset of analyzers to run, e.g. -analyzers goleak,lockorder,ctxflow (same semantics as -only)")
	list := fs.Bool("list", false, "list analyzers and exit")
	format := fs.String("format", "text", "comma-separated output formats: text, json, sarif")
	sarifOut := fs.String("sarif-out", "", "write the SARIF report to this file instead of stdout (required when sarif is combined with another format)")
	verbose := fs.Bool("v", false, "also report how many findings were suppressed")
	interp := fs.Bool("interprocedural", true, "consult function summaries (call graph + interprocedural facts); -interprocedural=false reverts every analyzer to its intraprocedural behavior")
	stats := fs.Bool("stats", false, "print per-analyzer timing, persistent-cache and summary statistics to stderr after the run")
	checkSup := fs.Bool("suppress", true, "audit lint:ignore directives for typos and staleness (full-suite runs only)")
	cacheDir := fs.String("cache-dir", "", "persistent cache directory (default <module>/.blocktri-lint-cache)")
	noCache := fs.Bool("no-cache", false, "disable the persistent cache: analyze everything, persist nothing")
	watch := fs.Bool("watch", false, "keep running: poll the module for changes, re-lint incrementally, print finding deltas (compiler-backed analyzers are skipped; see -watch-full)")
	watchFull := fs.Bool("watch-full", false, "with -watch, also run the compiler-backed analyzers (perfescape, perfbce, perfinline); each changed-tree poll may then invoke the Go toolchain")
	watchInterval := fs.Duration("watch-interval", 500*time.Millisecond, "polling interval for -watch")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s [%s] %s\n", a.Name, a.Severity, a.Doc)
		}
		fmt.Fprintf(stdout, "%-12s [%s] %s\n", analysis.SuppressName, analysis.SeverityWarning,
			"audit lint:ignore directives for typos and staleness")
		return 0
	}

	formats, err := parseFormats(*format)
	if err != nil {
		fmt.Fprintf(stderr, "blocktri-lint: %v\n", err)
		return 2
	}
	if *sarifOut != "" && !formats["sarif"] {
		fmt.Fprintln(stderr, "blocktri-lint: -sarif-out requires sarif among the -format values")
		return 2
	}
	if formats["sarif"] && len(formats) > 1 && *sarifOut == "" {
		fmt.Fprintln(stderr, "blocktri-lint: combining sarif with another format requires -sarif-out (stdout can carry only one stream)")
		return 2
	}
	if *watch && (formats["json"] || formats["sarif"]) {
		fmt.Fprintln(stderr, "blocktri-lint: -watch supports only -format text")
		return 2
	}
	if *watchFull && !*watch {
		fmt.Fprintln(stderr, "blocktri-lint: -watch-full only modifies -watch")
		return 2
	}

	// The loader always analyzes the whole module containing the working
	// directory; "./..." is accepted for familiarity, anything narrower is
	// not supported.
	for _, arg := range fs.Args() {
		if arg != "./..." && arg != "." {
			fmt.Fprintf(stderr, "blocktri-lint: only module-wide runs are supported; got %q (use ./...)\n", arg)
			return 2
		}
	}

	if *only != "" && *subset != "" {
		fmt.Fprintln(stderr, "blocktri-lint: -analyzers and -only are the same selector; pass only one")
		return 2
	}
	if pick := *only + *subset; pick != "" {
		selected := make(map[string]bool)
		for _, name := range strings.Split(pick, ",") {
			name = strings.TrimSpace(name)
			if _, ok := enabled[name]; !ok {
				fmt.Fprintf(stderr, "blocktri-lint: unknown analyzer %q (use -list)\n", name)
				return 2
			}
			selected[name] = true
		}
		for name, on := range enabled {
			*on = selected[name]
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "blocktri-lint: %v\n", err)
		return 2
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintf(stderr, "blocktri-lint: %v\n", err)
		return 2
	}

	var ran []*analysis.Analyzer
	known := make(map[string]bool, len(analyzers))
	allRan := true
	for _, a := range analyzers {
		if !*enabled[a.Name] {
			allRan = false
			continue
		}
		// Watch mode polls at sub-second intervals; analyzers that invoke
		// the toolchain (NeedsBuild) would turn every changed-tree poll into
		// a go build. They stay out of the loop unless -watch-full opts in.
		if *watch && !*watchFull && a.NeedsBuild {
			allRan = false
			continue
		}
		ran = append(ran, a)
		known[a.Name] = true
	}

	opts := analysis.RunOptions{Analyzers: ran, NoInterp: !*interp}
	if !*noCache {
		opts.CacheDir = *cacheDir
		if opts.CacheDir == "" {
			opts.CacheDir = analysis.DefaultCacheDir(root)
		}
	}
	audit := *checkSup && allRan

	if *watch {
		return runWatch(root, cwd, opts, known, audit, *watchInterval, stdout, stderr)
	}

	findings, res, suppressed, err := lintOnce(root, opts, known, audit)
	if err != nil {
		fmt.Fprintf(stderr, "blocktri-lint: %v\n", err)
		return 2
	}

	if formats["json"] {
		report := analysis.JSONInterp{Enabled: !opts.NoInterp, Summaries: res.Summary}
		if err := analysis.WriteJSON(stdout, findings, cwd, report); err != nil {
			fmt.Fprintf(stderr, "blocktri-lint: %v\n", err)
			return 2
		}
	}
	if formats["sarif"] {
		w := stdout
		var f *os.File
		if *sarifOut != "" {
			if err := os.MkdirAll(filepath.Dir(*sarifOut), 0o755); err != nil {
				fmt.Fprintf(stderr, "blocktri-lint: %v\n", err)
				return 2
			}
			f, err = os.Create(*sarifOut)
			if err != nil {
				fmt.Fprintf(stderr, "blocktri-lint: %v\n", err)
				return 2
			}
			w = f
		}
		err := analysis.WriteSARIF(w, ran, findings, cwd)
		if f != nil {
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(stderr, "blocktri-lint: %v\n", err)
			return 2
		}
	}
	if formats["text"] {
		for _, f := range findings {
			fmt.Fprintln(stdout, renderFinding(cwd, f))
		}
	}

	if *verbose && suppressed > 0 {
		fmt.Fprintf(stderr, "blocktri-lint: %d finding(s) suppressed by lint:ignore directives\n", suppressed)
	}
	if *stats {
		printStats(stderr, res)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "blocktri-lint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// parseFormats validates and dedups the -format list.
func parseFormats(s string) (map[string]bool, error) {
	out := make(map[string]bool)
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		switch f {
		case "text", "json", "sarif":
			out[f] = true
		default:
			return nil, fmt.Errorf("unknown format %q (use text, json or sarif)", f)
		}
	}
	return out, nil
}

// lintOnce runs one incremental lint and applies suppression filtering and
// the directive audit. It returns the surviving findings (sorted), the run
// result, and how many findings suppression dropped.
func lintOnce(root string, opts analysis.RunOptions, known map[string]bool, audit bool) ([]analysis.Finding, *analysis.RunResult, int, error) {
	res, err := analysis.RunLint(root, opts)
	if err != nil {
		return nil, nil, 0, err
	}
	findings := analysis.FilterSuppressed(res.Raw, res.Sup)
	suppressed := len(res.Raw) - len(findings)
	// The directive audit is only sound when every analyzer ran: a directive
	// for a disabled analyzer is not stale, just untested this run.
	if audit {
		findings = append(findings, res.Sup.Unused(known)...)
	}
	analysis.SortFindings(findings)
	return findings, res, suppressed, nil
}

// renderFinding is the canonical text line, with the path shortened
// relative to base when possible.
func renderFinding(base string, f analysis.Finding) string {
	name := f.Pos.Filename
	if rel, err := filepath.Rel(base, name); err == nil && !strings.HasPrefix(rel, "..") {
		name = rel
	}
	return fmt.Sprintf("%s:%d: [%s] %s", name, f.Pos.Line, f.Analyzer, f.Message)
}

// printStats reports per-analyzer wall time, what the persistent cache did,
// and both the structural and runtime summary counters.
func printStats(stderr io.Writer, res *analysis.RunResult) {
	for _, t := range res.Timings {
		fmt.Fprintf(stderr, "blocktri-lint: %-12s %10.1fms\n", t.Name, float64(t.Duration.Microseconds())/1000)
	}
	c := res.Cache
	switch {
	case c.Degraded != "":
		fmt.Fprintf(stderr, "blocktri-lint: cache: degraded (%s); %d package(s) analyzed cold\n", c.Degraded, c.Packages)
	case !c.Enabled:
		fmt.Fprintf(stderr, "blocktri-lint: cache: disabled; %d package(s) analyzed cold\n", c.Packages)
	default:
		fmt.Fprintf(stderr, "blocktri-lint: cache: %s: %d package(s), %d hit(s), %d miss(es), %d evicted, %d write error(s)\n",
			c.Dir, c.Packages, c.Hits, c.Misses, c.Evicted, c.WriteErrors)
	}
	if c.FactsHits+c.FactsMisses > 0 {
		fmt.Fprintf(stderr, "blocktri-lint: compiler facts: %d cache hit(s), %d toolchain run(s)\n", c.FactsHits, c.FactsMisses)
	}
	s := res.Summary
	fmt.Fprintf(stderr, "blocktri-lint: summaries: %d function(s), %d call edge(s), %d SCC(s) (largest %d), %d fixpoint iteration(s) across %d package(s)\n",
		s.Functions, s.CallEdges, s.SCCs, s.LargestSCC, s.FixpointIterations, s.Packages)
	rt := res.Runtime
	hitRate := 0.0
	if rt.Requests > 0 {
		hitRate = 100 * float64(rt.InProcessHits+rt.PersistentHits) / float64(rt.Requests)
	}
	fmt.Fprintf(stderr, "blocktri-lint: summary lookups: %d request(s), %d in-process hit(s), %d persistent hit(s) (%.1f%% hit rate); %d package(s) computed, %d loaded from cache\n",
		rt.Requests, rt.InProcessHits, rt.PersistentHits, hitRate, rt.PackagesComputed, rt.PackagesLoaded)
}

// runWatch polls the module with analysis.WatchSignature and re-lints
// incrementally whenever the tree changes, printing only the finding delta.
// It runs until interrupted (or, in tests, until testWatch.stop closes) and
// always exits 0: watch mode is an interactive feedback loop, not a gate.
func runWatch(root, cwd string, opts analysis.RunOptions, known map[string]bool, audit bool, interval time.Duration, stdout, stderr io.Writer) int {
	lint := func() (map[string]bool, int, bool) {
		findings, _, _, err := lintOnce(root, opts, known, audit)
		if err != nil {
			fmt.Fprintf(stderr, "blocktri-lint: %v\n", err)
			return nil, 0, false
		}
		set := make(map[string]bool, len(findings))
		for _, f := range findings {
			set[renderFinding(cwd, f)] = true
		}
		return set, len(findings), true
	}

	// Initial full run: print every finding, then watch for deltas.
	prev, n, ok := lint()
	if ok {
		for _, f := range sortedKeys(prev) {
			fmt.Fprintln(stdout, f)
		}
		fmt.Fprintf(stderr, "blocktri-lint: watching %s (%d finding(s), poll %v)\n", root, n, interval)
	} else {
		prev = map[string]bool{}
		fmt.Fprintf(stderr, "blocktri-lint: watching %s (last lint failed, poll %v)\n", root, interval)
	}
	sig, err := analysis.WatchSignature(root)
	if err != nil {
		fmt.Fprintf(stderr, "blocktri-lint: %v\n", err)
		return 2
	}

	interrupt := make(chan os.Signal, 1)
	signal.Notify(interrupt, os.Interrupt)
	defer signal.Stop(interrupt)
	var stop <-chan struct{}
	if testWatch != nil {
		stop = testWatch.stop
	}

	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-interrupt:
			fmt.Fprintln(stderr, "blocktri-lint: watch stopped")
			return 0
		case <-stop:
			fmt.Fprintln(stderr, "blocktri-lint: watch stopped")
			return 0
		case <-ticker.C:
		}
		next, err := analysis.WatchSignature(root)
		if err != nil || next == sig {
			notifyIterated()
			continue
		}
		sig = next
		cur, n, ok := lint()
		if !ok {
			// Transient error (e.g. a half-saved file that does not parse):
			// keep prev so the eventual good run reports the right delta.
			notifyIterated()
			continue
		}
		added, removed := 0, 0
		for _, f := range sortedKeys(cur) {
			if !prev[f] {
				fmt.Fprintln(stdout, "+ "+f)
				added++
			}
		}
		for _, f := range sortedKeys(prev) {
			if !cur[f] {
				fmt.Fprintln(stdout, "- "+f)
				removed++
			}
		}
		fmt.Fprintf(stderr, "blocktri-lint: re-linted: %d finding(s) (+%d -%d)\n", n, added, removed)
		prev = cur
		notifyIterated()
	}
}

func notifyIterated() {
	if testWatch != nil && testWatch.iterated != nil {
		select {
		case testWatch.iterated <- struct{}{}:
		default:
		}
	}
}

// sortedKeys renders a finding set in lexical order; findings render as
// file:line:..., so the sort groups deltas by file.
func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
