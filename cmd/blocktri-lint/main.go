// Command blocktri-lint runs the module's domain static-analysis suite
// (internal/analysis): matalias, commlock, commtag, floateq and
// panicpolicy. It loads and type-checks the whole module from source using
// only the standard library, reports findings as
//
//	file:line: [analyzer] message
//
// and exits nonzero if any finding survives suppression
// ("//lint:ignore <analyzer> reason" on or above the offending line).
//
// Usage:
//
//	blocktri-lint ./...             # lint the whole module (the default)
//	blocktri-lint -floateq=false ./...
//	blocktri-lint -only commtag ./...
//	blocktri-lint -list
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"blocktri/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	analyzers := analysis.Analyzers()
	enabled := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		enabled[a.Name] = flag.Bool(a.Name, true, "enable the "+a.Name+" analyzer ("+a.Doc+")")
	}
	only := flag.String("only", "", "comma-separated list of analyzers to run (overrides the per-analyzer flags)")
	list := flag.Bool("list", false, "list analyzers and exit")
	verbose := flag.Bool("v", false, "also report how many findings were suppressed")
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	// The loader always analyzes the whole module containing the working
	// directory; "./..." is accepted for familiarity, anything narrower is
	// not supported.
	for _, arg := range flag.Args() {
		if arg != "./..." && arg != "." {
			fmt.Fprintf(os.Stderr, "blocktri-lint: only module-wide runs are supported; got %q (use ./...)\n", arg)
			return 2
		}
	}

	if *only != "" {
		selected := make(map[string]bool)
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			if _, ok := enabled[name]; !ok {
				fmt.Fprintf(os.Stderr, "blocktri-lint: unknown analyzer %q (use -list)\n", name)
				return 2
			}
			selected[name] = true
		}
		for name, on := range enabled {
			*on = selected[name]
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "blocktri-lint: %v\n", err)
		return 2
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "blocktri-lint: %v\n", err)
		return 2
	}
	m, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "blocktri-lint: %v\n", err)
		return 2
	}
	sup := analysis.CollectSuppressions(m)

	var findings []analysis.Finding
	suppressed := 0
	for _, a := range analyzers {
		if !*enabled[a.Name] {
			continue
		}
		all := a.Run(m)
		kept := analysis.FilterSuppressed(all, sup)
		suppressed += len(all) - len(kept)
		findings = append(findings, kept...)
	}
	analysis.SortFindings(findings)

	for _, f := range findings {
		name := f.Pos.Filename
		if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
		fmt.Printf("%s:%d: [%s] %s\n", name, f.Pos.Line, f.Analyzer, f.Message)
	}
	if *verbose && suppressed > 0 {
		fmt.Fprintf(os.Stderr, "blocktri-lint: %d finding(s) suppressed by lint:ignore directives\n", suppressed)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "blocktri-lint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
