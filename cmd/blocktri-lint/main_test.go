package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// lintTimeBudget bounds one cold whole-repo run (load + type-check + all
// ten analyzers). The dataflow analyzers solve a fixed-point per function
// body; if someone makes the transfer functions superlinear, this is the
// tripwire.
const lintTimeBudget = 5 * time.Second

// TestRepoIsLintClean is the driver-level regression gate: a full run of
// every analyzer over the real module source must produce zero unsuppressed
// diagnostics. If an analyzer change starts flagging shipped code, this
// fails with the exact findings in the error message.
func TestRepoIsLintClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	start := time.Now()
	code := run([]string{"./..."}, &stdout, &stderr)
	elapsed := time.Since(start)
	if code != 0 {
		t.Fatalf("blocktri-lint exited %d over the repo\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
	if out := strings.TrimSpace(stdout.String()); out != "" {
		t.Fatalf("expected no findings, got:\n%s", out)
	}
	if !raceEnabled && elapsed > lintTimeBudget {
		t.Fatalf("whole-repo lint took %v, budget is %v", elapsed, lintTimeBudget)
	}
}

// BenchmarkLintRepo measures a full cold run: module load, type-check and
// all analyzers. Run with -benchtime=3x or similar; each iteration reloads
// the module from disk.
func BenchmarkLintRepo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var stdout, stderr bytes.Buffer
		if code := run([]string{"./..."}, &stdout, &stderr); code != 0 {
			b.Fatalf("blocktri-lint exited %d\n%s\n%s", code, stdout.String(), stderr.String())
		}
	}
}

// TestJSONFormat checks that -format json emits a well-formed (possibly
// empty) array over a clean tree.
func TestJSONFormat(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-format", "json", "./..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstderr:\n%s", code, stderr.String())
	}
	var findings []map[string]any
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, stdout.String())
	}
	if len(findings) != 0 {
		t.Fatalf("expected empty findings array, got %d", len(findings))
	}
}

// TestSARIFFormat checks that -format sarif emits a SARIF 2.1.0 log naming
// every analyzer that ran as a rule, even when there are no results.
func TestSARIFFormat(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-format", "sarif", "./..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstderr:\n%s", code, stderr.String())
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []any `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &log); err != nil {
		t.Fatalf("output is not SARIF JSON: %v\n%s", err, stdout.String())
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("unexpected SARIF shape: version=%q runs=%d", log.Version, len(log.Runs))
	}
	d := log.Runs[0].Tool.Driver
	if d.Name != "blocktri-lint" {
		t.Fatalf("driver name %q", d.Name)
	}
	rules := make(map[string]bool, len(d.Rules))
	for _, r := range d.Rules {
		rules[r.ID] = true
	}
	for _, want := range []string{"wsescape", "poolrelease", "errdiscard", "commshape", "matalias", "commtag"} {
		if !rules[want] {
			t.Errorf("SARIF rules missing %q (got %v)", want, d.Rules)
		}
	}
	if len(log.Runs[0].Results) != 0 {
		t.Fatalf("expected zero SARIF results over a clean tree, got %d", len(log.Runs[0].Results))
	}
}

// TestBadFormatRejected guards the usage error path.
func TestBadFormatRejected(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-format", "xml", "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("expected exit 2 for unknown format, got %d", code)
	}
	if !strings.Contains(stderr.String(), "unknown format") {
		t.Fatalf("stderr missing diagnostic: %s", stderr.String())
	}
}
