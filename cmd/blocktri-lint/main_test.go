package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// lintTimeBudget bounds one cold whole-repo run (load + type-check + all
// analyzers with interprocedural summaries on). The dataflow analyzers solve
// a fixed-point per function body and the summary layer one per package; if
// someone makes the transfer functions superlinear, this is the tripwire.
// The compiler fact table is seeded before the clock starts: the gcflags
// build behind it is a constant multi-second toolchain cost (measured on
// its own as Lint/compilerfacts in the perf harness) that would drown the
// superlinearity signal this budget exists to catch.
const lintTimeBudget = 6 * time.Second

// seedCompilerFacts caches the compiler fact table for the current tree so
// a following timed run replays it instead of invoking the toolchain. The
// perfescape-only subset is the cheapest run that demands facts.
func seedCompilerFacts(t *testing.T) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-analyzers", "perfescape", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("facts seed run exited %d\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
}

// intraTimeBudget bounds the same run with -interprocedural=false. The
// summary layer must stay pay-for-what-you-use: turning it off cannot be
// slower than the full run.
const intraTimeBudget = lintTimeBudget

// TestRepoIsLintClean is the driver-level regression gate: a full run of
// every analyzer over the real module source must produce zero unsuppressed
// diagnostics. If an analyzer change starts flagging shipped code, this
// fails with the exact findings in the error message.
func TestRepoIsLintClean(t *testing.T) {
	seedCompilerFacts(t)
	var stdout, stderr bytes.Buffer
	start := time.Now()
	code := run([]string{"./..."}, &stdout, &stderr)
	elapsed := time.Since(start)
	if code != 0 {
		t.Fatalf("blocktri-lint exited %d over the repo\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
	if out := strings.TrimSpace(stdout.String()); out != "" {
		t.Fatalf("expected no findings, got:\n%s", out)
	}
	if !raceEnabled && elapsed > lintTimeBudget {
		t.Fatalf("whole-repo lint took %v, budget is %v", elapsed, lintTimeBudget)
	}
}

// TestIntraproceduralRunStaysClean pins the off-switch: with
// -interprocedural=false every analyzer falls back to its intraprocedural
// self, and the repo must still lint clean within the same budget (the
// summary-closed false negatives live only in fixtures, and commshape's
// helper-paired sends are all intra-function in shipped code).
func TestIntraproceduralRunStaysClean(t *testing.T) {
	seedCompilerFacts(t)
	var stdout, stderr bytes.Buffer
	start := time.Now()
	code := run([]string{"-interprocedural=false", "./..."}, &stdout, &stderr)
	elapsed := time.Since(start)
	if code != 0 {
		t.Fatalf("blocktri-lint -interprocedural=false exited %d\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
	if !raceEnabled && elapsed > intraTimeBudget {
		t.Fatalf("intraprocedural lint took %v, budget is %v", elapsed, intraTimeBudget)
	}
}

// BenchmarkLintRepo measures a full cold run: module load, type-check and
// all analyzers with summaries on, with the persistent cache disabled so
// every iteration pays full price. Run with -benchtime=3x or similar.
func BenchmarkLintRepo(b *testing.B) {
	benchmarkLint(b, []string{"-no-cache", "./..."})
}

// BenchmarkLintRepoIntraprocedural is the same run with the summary layer
// off: the spread between the two is the measured cost of the
// interprocedural layer.
func BenchmarkLintRepoIntraprocedural(b *testing.B) {
	benchmarkLint(b, []string{"-no-cache", "-interprocedural=false", "./..."})
}

// BenchmarkLintRepoWarm measures a fully cache-warm run: the first
// iteration seeds the persistent cache, then every iteration replays from
// it (scan + entry reads, no type-checking).
func BenchmarkLintRepoWarm(b *testing.B) {
	dir := b.TempDir()
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-cache-dir", dir, "./..."}, &stdout, &stderr); code != 0 {
		b.Fatalf("seed run exited %d\n%s\n%s", code, stdout.String(), stderr.String())
	}
	b.ResetTimer()
	benchmarkLint(b, []string{"-cache-dir", dir, "./..."})
}

func benchmarkLint(b *testing.B, args []string) {
	for i := 0; i < b.N; i++ {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 0 {
			b.Fatalf("blocktri-lint exited %d\n%s\n%s", code, stdout.String(), stderr.String())
		}
	}
}

// TestJSONFormat checks that -format json emits the report object: an empty
// findings array over a clean tree plus the interprocedural block with
// plausible counters.
func TestJSONFormat(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-format", "json", "./..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstderr:\n%s", code, stderr.String())
	}
	var report struct {
		Findings        []map[string]any `json:"findings"`
		Interprocedural struct {
			Enabled   bool `json:"enabled"`
			Summaries struct {
				Functions int `json:"functions"`
				CallEdges int `json:"call_edges"`
				SCCs      int `json:"sccs"`
				Packages  int `json:"packages"`
			} `json:"summaries"`
		} `json:"interprocedural"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &report); err != nil {
		t.Fatalf("output is not the JSON report object: %v\n%s", err, stdout.String())
	}
	if report.Findings == nil || len(report.Findings) != 0 {
		t.Fatalf("expected empty findings array, got %v", report.Findings)
	}
	ip := report.Interprocedural
	if !ip.Enabled {
		t.Fatal("interprocedural.enabled = false on a default run")
	}
	// The summaries block is structural (functions, edges, SCCs, packages) —
	// a pure function of the tree, so cold and cache-warm runs agree on it.
	if ip.Summaries.Functions == 0 || ip.Summaries.CallEdges == 0 || ip.Summaries.SCCs == 0 || ip.Summaries.Packages == 0 {
		t.Fatalf("summary counters did not move: %+v", ip.Summaries)
	}
}

// TestJSONDeterministic is the byte-identical gate from the acceptance
// criteria: two full -format json runs over the same tree must produce
// exactly the same bytes, findings and cache counters included.
func TestJSONDeterministic(t *testing.T) {
	runOnce := func() []byte {
		var stdout, stderr bytes.Buffer
		if code := run([]string{"-format", "json", "./..."}, &stdout, &stderr); code != 0 {
			t.Fatalf("exit %d\nstderr:\n%s", code, stderr.String())
		}
		return stdout.Bytes()
	}
	a, b := runOnce(), runOnce()
	if !bytes.Equal(a, b) {
		t.Fatalf("two json runs differ:\nfirst:\n%s\nsecond:\n%s", a, b)
	}
}

// TestJSONIntraproceduralFlag checks the off-switch is reflected in the
// report metadata.
func TestJSONIntraproceduralFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-interprocedural=false", "-format", "json", "./..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstderr:\n%s", code, stderr.String())
	}
	var report struct {
		Interprocedural struct {
			Enabled bool `json:"enabled"`
		} `json:"interprocedural"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &report); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if report.Interprocedural.Enabled {
		t.Fatal("interprocedural.enabled = true despite -interprocedural=false")
	}
}

// TestSARIFFormat checks that -format sarif emits a SARIF 2.1.0 log naming
// every analyzer that ran as a rule, even when there are no results.
func TestSARIFFormat(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-format", "sarif", "./..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstderr:\n%s", code, stderr.String())
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID      string `json:"id"`
						HelpURI string `json:"helpUri"`
						Default struct {
							Level string `json:"level"`
						} `json:"defaultConfiguration"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []any `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &log); err != nil {
		t.Fatalf("output is not SARIF JSON: %v\n%s", err, stdout.String())
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("unexpected SARIF shape: version=%q runs=%d", log.Version, len(log.Runs))
	}
	d := log.Runs[0].Tool.Driver
	if d.Name != "blocktri-lint" {
		t.Fatalf("driver name %q", d.Name)
	}
	rules := make(map[string]struct{ helpURI, level string }, len(d.Rules))
	for _, r := range d.Rules {
		rules[r.ID] = struct{ helpURI, level string }{r.HelpURI, r.Default.Level}
	}
	for _, want := range []string{"wsescape", "poolrelease", "errdiscard", "commshape", "blockshape", "matalias", "commtag", "goleak", "lockorder", "ctxflow", "suppress"} {
		if _, ok := rules[want]; !ok {
			t.Errorf("SARIF rules missing %q (got %v)", want, d.Rules)
		}
	}
	// Every rule must carry a docs anchor and a severity level.
	for id, r := range rules {
		wantURI := "docs/STATIC_ANALYSIS.md#" + id
		if id == "suppress" {
			wantURI = "docs/STATIC_ANALYSIS.md#suppression"
		}
		if r.helpURI != wantURI {
			t.Errorf("rule %q helpUri = %q, want %q", id, r.helpURI, wantURI)
		}
		if r.level != "error" && r.level != "warning" {
			t.Errorf("rule %q defaultConfiguration.level = %q", id, r.level)
		}
	}
	// Spot-check the tiers: correctness analyzers are errors, style-tier
	// checks warnings.
	for id, want := range map[string]string{"wsescape": "error", "blockshape": "error", "goleak": "error", "lockorder": "error", "ctxflow": "warning", "floateq": "warning", "suppress": "warning"} {
		if r := rules[id]; r.level != want {
			t.Errorf("rule %q level = %q, want %q", id, r.level, want)
		}
	}
	if len(log.Runs[0].Results) != 0 {
		t.Fatalf("expected zero SARIF results over a clean tree, got %d", len(log.Runs[0].Results))
	}
}

// TestAnalyzersFlagSubset runs only the concurrency trio via -analyzers and
// expects a clean exit: the repo's goleak/ctxflow findings are suppressed in
// place, and the selector must wire the names through exactly like -only.
func TestAnalyzersFlagSubset(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-analyzers", "goleak,lockorder,ctxflow", "./..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if out := strings.TrimSpace(stdout.String()); out != "" {
		t.Fatalf("expected no findings, got:\n%s", out)
	}
}

// TestAnalyzersFlagUnknownName guards the validation path: a misspelled
// analyzer name is a usage error, not a silently empty run.
func TestAnalyzersFlagUnknownName(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-analyzers", "goleak,nope", "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("expected exit 2 for unknown analyzer, got %d", code)
	}
	if !strings.Contains(stderr.String(), `unknown analyzer "nope" (use -list)`) {
		t.Fatalf("stderr missing diagnostic: %s", stderr.String())
	}
}

// TestAnalyzersFlagConflictsWithOnly: the two selectors are aliases; passing
// both is ambiguous and rejected.
func TestAnalyzersFlagConflictsWithOnly(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-only", "floateq", "-analyzers", "goleak", "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("expected exit 2 when both selectors are given, got %d", code)
	}
	if !strings.Contains(stderr.String(), "pass only one") {
		t.Fatalf("stderr missing diagnostic: %s", stderr.String())
	}
}

// TestAnalyzersFlagSkipsSuppressAudit pins the audit gating on the new
// selector: the repo carries lint:ignore directives for analyzers outside
// this subset (e.g. the goleak directive in internal/serve), which would be
// reported stale if the audit ran against a partial suite.
func TestAnalyzersFlagSkipsSuppressAudit(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-analyzers", "floateq", "./..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if out := strings.TrimSpace(stdout.String()); out != "" {
		t.Fatalf("subset run must not audit directives, got:\n%s", out)
	}
}

// TestBadFormatRejected guards the usage error path.
func TestBadFormatRejected(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-format", "xml", "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("expected exit 2 for unknown format, got %d", code)
	}
	if !strings.Contains(stderr.String(), "unknown format") {
		t.Fatalf("stderr missing diagnostic: %s", stderr.String())
	}
}
