//go:build race

package main

// Race instrumentation slows the type-checker and the dataflow solver by
// 2-3x; the lint time budget only means something in a plain build.
const raceEnabled = true
