package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// Driver-level tests for the persistent cache, multi-format output and
// watch mode. These drive run() exactly as a shell would.

// syncBuffer is an io.Writer safe to read while the watch goroutine writes.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestWarmRunReplaysFromCache seeds a private cache, then checks the second
// run hits every package and produces byte-identical output to an uncached
// run.
func TestWarmRunReplaysFromCache(t *testing.T) {
	dir := t.TempDir()

	var cold bytes.Buffer
	if code := run([]string{"-no-cache", "-format", "json", "./..."}, &cold, &bytes.Buffer{}); code != 0 {
		t.Fatalf("uncached run exited %d", code)
	}
	var seed bytes.Buffer
	if code := run([]string{"-cache-dir", dir, "-format", "json", "./..."}, &seed, &bytes.Buffer{}); code != 0 {
		t.Fatalf("seed run exited %d", code)
	}
	var warm, stderr bytes.Buffer
	start := time.Now()
	code := run([]string{"-cache-dir", dir, "-format", "json", "-stats", "./..."}, &warm, &stderr)
	elapsed := time.Since(start)
	if code != 0 {
		t.Fatalf("warm run exited %d\nstderr:\n%s", code, stderr.String())
	}
	if !bytes.Equal(cold.Bytes(), warm.Bytes()) {
		t.Fatalf("warm JSON differs from uncached cold JSON:\ncold:\n%s\nwarm:\n%s", cold.String(), warm.String())
	}
	if !strings.Contains(stderr.String(), " 0 miss(es)") {
		t.Fatalf("warm run was not fully warm:\n%s", stderr.String())
	}
	// The acceptance budget is 200ms for a warm full-repo run; in practice it
	// is ~15ms. Skip the timing check under the race detector.
	if !raceEnabled && elapsed > 200*time.Millisecond {
		t.Fatalf("warm run took %v, budget is 200ms", elapsed)
	}
}

// TestMultiFormatWithSarifOut checks the single-invocation CI shape: text on
// stdout for gating, SARIF to a file for archiving.
func TestMultiFormatWithSarifOut(t *testing.T) {
	sarifPath := filepath.Join(t.TempDir(), "reports", "lint.sarif")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-no-cache", "-format", "text,sarif", "-sarif-out", sarifPath, "./..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstderr:\n%s", code, stderr.String())
	}
	if out := strings.TrimSpace(stdout.String()); out != "" {
		t.Fatalf("expected no text findings on a clean tree, got:\n%s", out)
	}
	data, err := os.ReadFile(sarifPath)
	if err != nil {
		t.Fatalf("SARIF file not written: %v", err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []any  `json:"runs"`
	}
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("SARIF file is not JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("unexpected SARIF shape: version=%q runs=%d", log.Version, len(log.Runs))
	}
}

// TestFormatFlagValidation guards the stream-conflict rules.
func TestFormatFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"sarif-out without sarif", []string{"-format", "text", "-sarif-out", "x.sarif", "./..."}, "-sarif-out requires sarif"},
		{"multi-format sarif without sarif-out", []string{"-format", "text,sarif", "./..."}, "requires -sarif-out"},
		{"watch with json", []string{"-watch", "-format", "json", "./..."}, "-watch supports only -format text"},
		{"watch-full without watch", []string{"-watch-full", "./..."}, "-watch-full only modifies -watch"},
		{"unknown in list", []string{"-format", "text,xml", "./..."}, "unknown format"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != 2 {
				t.Fatalf("expected exit 2, got %d\nstderr:\n%s", code, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.want) {
				t.Fatalf("stderr missing %q:\n%s", tc.want, stderr.String())
			}
		})
	}
}

// TestWatchCompilerBackedSkip pins the watch-mode contract for the
// compiler-backed analyzers: an edit that introduces both a floateq finding
// and a perfescape escape surfaces only the floateq delta under plain
// -watch (NeedsBuild analyzers are skipped), while -watch-full opts the
// toolchain back in and surfaces the perfescape delta too.
func TestWatchCompilerBackedSkip(t *testing.T) {
	clean := `package p

var sink any

// Hot stays allocation-free here.
//perf:hotpath
func Hot(x float64) float64 { return x * 2 }

// Near is fine.
func Near(p, q float64) bool { return q-p < 1e-9 && p-q < 1e-9 }
`
	dirty := `package p

var sink any

// Hot boxes its argument now.
//perf:hotpath
func Hot(x float64) float64 {
	sink = x
	return x * 2
}

// Near compares exactly.
func Near(p, q float64) bool { return p == q }
`
	for _, tc := range []struct {
		name    string
		args    []string
		wantHot bool // perfescape delta expected
	}{
		{"watch-skips", []string{"-watch", "-watch-interval", "20ms", "./..."}, false},
		{"watch-full-runs", []string{"-watch", "-watch-full", "-watch-interval", "20ms", "./..."}, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			root := t.TempDir()
			write := func(rel, src string) {
				t.Helper()
				if err := os.WriteFile(filepath.Join(root, rel), []byte(src), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			if err := os.MkdirAll(filepath.Join(root, "p"), 0o755); err != nil {
				t.Fatal(err)
			}
			write("go.mod", "module fixturemod\n\ngo 1.22\n")
			write(filepath.Join("p", "p.go"), clean)

			oldWD, err := os.Getwd()
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Chdir(root); err != nil {
				t.Fatal(err)
			}
			restoreWD := func() {
				if err := os.Chdir(oldWD); err != nil {
					t.Fatal(err)
				}
			}

			testWatch = &watchHooks{stop: make(chan struct{}), iterated: make(chan struct{}, 64)}
			defer func() { testWatch = nil }()

			var stdout, stderr syncBuffer
			done := make(chan int, 1)
			go func() {
				done <- run(tc.args, &stdout, &stderr)
			}()

			waitFor := func(buf *syncBuffer, substr string) {
				t.Helper()
				deadline := time.Now().Add(15 * time.Second)
				for time.Now().Before(deadline) {
					if strings.Contains(buf.String(), substr) {
						return
					}
					select {
					case <-testWatch.iterated:
					case <-time.After(100 * time.Millisecond):
					}
				}
				close(testWatch.stop)
				<-done
				restoreWD()
				t.Fatalf("timed out waiting for %q\nstdout:\n%s\nstderr:\n%s", substr, stdout.String(), stderr.String())
			}

			waitFor(&stderr, "watching")
			write(filepath.Join("p", "p.go"), dirty)
			// The floateq delta proves the edit's iteration completed in both
			// modes, so the absence of a perfescape delta below is a real
			// skip, not a not-yet-polled race.
			waitFor(&stdout, "[floateq]")
			if tc.wantHot {
				waitFor(&stdout, "[perfescape]")
			}

			close(testWatch.stop)
			code := <-done
			restoreWD()
			if code != 0 {
				t.Fatalf("watch exited %d\nstderr:\n%s", code, stderr.String())
			}
			if !tc.wantHot && strings.Contains(stdout.String(), "[perfescape]") {
				t.Fatalf("-watch without -watch-full ran a compiler-backed analyzer:\n%s", stdout.String())
			}
		})
	}
}

// TestWatchSmoke is the end-to-end watch gate: start -watch on a clean temp
// module, introduce a finding, and require the delta line to appear; then
// fix it and require the resolution line.
func TestWatchSmoke(t *testing.T) {
	root := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module fixturemod\n\ngo 1.22\n")
	clean := "package p\n\n// Near is fine.\nfunc Near(p, q float64) bool { return q-p < 1e-9 && p-q < 1e-9 }\n"
	dirty := "package p\n\n// Near compares exactly.\nfunc Near(p, q float64) bool { return p == q }\n"
	write("p/p.go", clean)

	oldWD, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(root); err != nil {
		t.Fatal(err)
	}
	restoreWD := func() {
		if err := os.Chdir(oldWD); err != nil {
			t.Fatal(err)
		}
	}

	testWatch = &watchHooks{stop: make(chan struct{}), iterated: make(chan struct{}, 64)}
	defer func() { testWatch = nil }()

	var stdout, stderr syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-watch", "-watch-interval", "20ms", "./..."}, &stdout, &stderr)
	}()

	waitFor := func(buf *syncBuffer, substr string) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for time.Now().Before(deadline) {
			if strings.Contains(buf.String(), substr) {
				return
			}
			select {
			case <-testWatch.iterated:
			case <-time.After(100 * time.Millisecond):
			}
		}
		close(testWatch.stop)
		<-done
		restoreWD()
		t.Fatalf("timed out waiting for %q\nstdout:\n%s\nstderr:\n%s", substr, stdout.String(), stderr.String())
	}

	waitFor(&stderr, "watching")
	write("p/p.go", dirty)
	waitFor(&stdout, "+ "+filepath.Join("p", "p.go"))
	write("p/p.go", clean)
	waitFor(&stdout, "- "+filepath.Join("p", "p.go"))

	close(testWatch.stop)
	code := <-done
	restoreWD()
	if code != 0 {
		t.Fatalf("watch exited %d\nstderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "watch stopped") {
		t.Fatalf("missing stop message:\n%s", stderr.String())
	}
	// The added and resolved finding must both name floateq.
	out := stdout.String()
	if !strings.Contains(out, "[floateq]") {
		t.Fatalf("delta lines missing analyzer tag:\n%s", out)
	}
}
