package main

import (
	"testing"
	"time"
)

func TestParseInts(t *testing.T) {
	got, err := parseInts("1, 2,8 ,64")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 8, 64}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	for _, bad := range []string{"", "a", "1,,2", "0", "-3", "1,2,x"} {
		if _, err := parseInts(bad); err == nil {
			t.Fatalf("parseInts(%q) should fail", bad)
		}
	}
}

func TestDur(t *testing.T) {
	if d := dur(1.5); d != 1500*time.Millisecond {
		t.Fatalf("dur(1.5) = %v", d)
	}
	if d := dur(0); d != 0 {
		t.Fatalf("dur(0) = %v", d)
	}
}
