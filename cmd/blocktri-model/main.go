// Command blocktri-model prints analytic cost predictions (flops, scan
// traffic, predicted times, ARD-over-RD speedup) for arbitrary problem
// and machine parameters, without running any solver. The model is the
// one validated against the solvers' measured counters in experiment E10.
//
// Usage:
//
//	blocktri-model -n 4096 -m 32 -r 1 -p 1,2,4,8,16,32,64
//	blocktri-model -n 1024 -m 16 -nrhs 1,10,100,1000 -p 64
//	blocktri-model -flops 5e10 -alpha 2e-6 -beta 1e-10 ...
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"blocktri/internal/comm"
	"blocktri/internal/costmodel"
	"blocktri/internal/harness"
)

func main() {
	n := flag.Int("n", 1024, "block rows")
	m := flag.Int("m", 16, "block size")
	r := flag.Int("r", 1, "right-hand-side columns per solve")
	ps := flag.String("p", "1,2,4,8,16,32,64", "comma-separated rank counts")
	nrhs := flag.String("nrhs", "1,10,100,1000,10000", "comma-separated right-hand-side counts for the speedup table")
	rate := flag.Float64("flops", 1e9, "machine flop rate per rank (flop/s)")
	alpha := flag.Float64("alpha", comm.DefaultCostModel.Alpha, "network latency per message (s)")
	beta := flag.Float64("beta", comm.DefaultCostModel.Beta, "network transfer time per byte (s)")
	flag.Parse()

	machine := costmodel.Machine{
		FlopsPerSec: *rate,
		Net:         comm.CostModel{Alpha: *alpha, Beta: *beta},
	}

	pList, err := parseInts(*ps)
	if err != nil {
		fatal(err)
	}
	scaling := harness.NewTable(
		fmt.Sprintf("Predicted per-solve critical path (N=%d M=%d R=%d, %.3g flop/s, alpha=%.1es beta=%.1es/B)",
			*n, *m, *r, *rate, *alpha, *beta),
		"P", "Thomas(P=1)", "RD", "ARD factor", "ARD solve", "SPIKE factor", "SPIKE solve", "PCR factor", "PCR solve", "RD scan KiB")
	for _, p := range pList {
		prm := costmodel.Params{N: *n, M: *m, P: p, R: *r}
		thomas := machine.Time(costmodel.Cost{
			MaxRankFlops: costmodel.ThomasFactor(prm).MaxRankFlops + costmodel.ThomasSolve(prm).MaxRankFlops})
		rd := costmodel.RDSolve(prm)
		row := []any{p,
			dur(thomas),
			dur(machine.Time(rd)),
			dur(machine.Time(costmodel.ARDFactor(prm))),
			dur(machine.Time(costmodel.ARDSolve(prm))),
		}
		if *n >= 2*p {
			row = append(row,
				dur(machine.Time(costmodel.SpikeFactor(prm))),
				dur(machine.Time(costmodel.SpikeSolve(prm))))
		} else {
			row = append(row, "n/a", "n/a")
		}
		row = append(row,
			dur(machine.Time(costmodel.PCRFactor(prm))),
			dur(machine.Time(costmodel.PCRSolve(prm))))
		row = append(row, rd.ScanWords*8/1024)
		scaling.AddRow(row...)
	}
	scaling.Render(os.Stdout)

	rhsList, err := parseInts(*nrhs)
	if err != nil {
		fatal(err)
	}
	pFixed := pList[len(pList)-1]
	speedup := harness.NewTable(
		fmt.Sprintf("Predicted ARD speedup over RD for R sequential solves (P=%d)", pFixed),
		"R", "RD total", "ARD total", "speedup")
	prm := costmodel.Params{N: *n, M: *m, P: pFixed, R: *r}
	rdOne := machine.Time(costmodel.RDSolve(prm))
	af := machine.Time(costmodel.ARDFactor(prm))
	as := machine.Time(costmodel.ARDSolve(prm))
	for _, rr := range rhsList {
		rdTotal := float64(rr) * rdOne
		ardTotal := af + float64(rr)*as
		speedup.AddRow(rr, dur(rdTotal), dur(ardTotal), rdTotal/ardTotal)
	}
	speedup.Render(os.Stdout)
}

func dur(seconds float64) time.Duration {
	return time.Duration(seconds * 1e9)
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad integer list entry %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "blocktri-model: %v\n", err)
	os.Exit(1)
}
