// Perf-regression harness: a fixed set of micro-benchmarks over the paths
// this repo optimizes — the allocation-free ARD solve, the GEMM kernel,
// and a cold whole-repo blocktri-lint run — with committed JSON baselines
// and a compare mode for CI.
//
//	blocktri-bench -perf baseline   # (re)write BENCH_*.json in -perf-dir
//	blocktri-bench -perf compare    # re-measure, fail on >15% regression
//
// Each measurement is the best of three testing.Benchmark runs (the min
// damps scheduler and turbo noise, which is ±8% on the reference machine;
// the 15% gate then only trips on real regressions). Allocation counts are
// exact and gate at zero tolerance on the solver suites: the arenas either
// work or they don't. The lint suite gates time only — a whole-module
// type-check allocates by design.
package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"blocktri"
	"blocktri/internal/analysis"
	"blocktri/internal/mat"
	"blocktri/internal/workload"
)

const (
	perfSchema = "blocktri-bench/v1"
	// perfRegressionTol is the relative ns/op slowdown that fails compare
	// mode.
	perfRegressionTol = 0.15
)

// perfEntry is one benchmark's recorded result.
type perfEntry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	GFlops      float64 `json:"gflops,omitempty"`
	// BudgetNs, when nonzero, is an absolute ns/op ceiling gated in compare
	// mode on top of the relative regression tolerance. The warm lint entry
	// uses it to pin the acceptance budget (a warm full-repo run must stay
	// under 200ms) independent of whatever the baseline machine measured.
	BudgetNs float64 `json:"budget_ns,omitempty"`
	// Tol, when nonzero, overrides perfRegressionTol for this entry. Tail
	// latency percentiles carry run-to-run noise a mean never sees, so the
	// serve p99 entry uses a wide relative tolerance and leans on BudgetNs
	// for the hard ceiling.
	Tol float64 `json:"tol,omitempty"`
}

// perfSuite is the on-disk format of a BENCH_*.json file.
type perfSuite struct {
	Schema  string      `json:"schema"`
	Suite   string      `json:"suite"`
	Entries []perfEntry `json:"entries"`
}

// bestOf3 runs f under testing.Benchmark three times and returns the run
// with the lowest ns/op.
func bestOf3(f func(b *testing.B)) testing.BenchmarkResult {
	best := testing.Benchmark(f)
	for i := 0; i < 2; i++ {
		r := testing.Benchmark(f)
		if r.NsPerOp() < best.NsPerOp() {
			best = r
		}
	}
	return best
}

// measureARDSolve benchmarks the factored ARD solve at the paper's headline
// configuration (N=512, M=16, P=8) for single and batched right-hand
// sides. GFLOP/s uses the solver's analytic flop count.
func measureARDSolve() ([]perfEntry, error) {
	a := workload.Build(workload.Oscillatory, 512, 16, 1)
	ard := blocktri.NewARD(a, blocktri.Config{World: blocktri.NewWorld(8)})
	if err := ard.Factor(); err != nil {
		return nil, fmt.Errorf("ARD factor: %v", err)
	}
	var entries []perfEntry
	for _, r := range []int{1, 64, 256} {
		rhs := a.RandomRHS(r, rand.New(rand.NewSource(2)))
		x := blocktri.NewDenseMatrix(rhs.Rows, rhs.Cols)
		if err := ard.SolveTo(x, rhs); err != nil { // warm the arenas
			return nil, fmt.Errorf("ARD solve R=%d: %v", r, err)
		}
		res := bestOf3(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := ard.SolveTo(x, rhs); err != nil {
					b.Fatal(err)
				}
			}
		})
		flops := float64(ard.Stats().Flops)
		entries = append(entries, perfEntry{
			Name:        fmt.Sprintf("ARDSolve/R=%d", r),
			NsPerOp:     float64(res.NsPerOp()),
			AllocsPerOp: res.AllocsPerOp(),
			GFlops:      flops / float64(res.NsPerOp()),
		})
	}
	return entries, nil
}

// measureGEMM benchmarks Mul across the kernel dispatch tiers: square
// shapes for plain tiled (16, 32) and the packed register-blocked kernel
// (64, 128), plus the skinny-panel shapes the panelized ARD solve phase
// actually issues — a 32x32 transfer half against a 32xR right-hand-side
// panel.
func measureGEMM() ([]perfEntry, error) {
	var entries []perfEntry
	shapes := []struct {
		m, k, n int
		name    string
	}{
		{16, 16, 16, "GEMM/n=16"},
		{32, 32, 32, "GEMM/n=32"},
		{64, 64, 64, "GEMM/n=64"},
		{128, 128, 128, "GEMM/n=128"},
		{32, 32, 64, "GEMM/m=32,k=32,n=64"},
		{32, 32, 256, "GEMM/m=32,k=32,n=256"},
	}
	for _, sh := range shapes {
		a := mat.New(sh.m, sh.k)
		bm := mat.New(sh.k, sh.n)
		dst := mat.New(sh.m, sh.n)
		rng := rand.New(rand.NewSource(int64(sh.m + sh.k + sh.n)))
		for i := 0; i < sh.m; i++ {
			for j := 0; j < sh.k; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
		}
		for i := 0; i < sh.k; i++ {
			for j := 0; j < sh.n; j++ {
				bm.Set(i, j, rng.NormFloat64())
			}
		}
		mat.Mul(dst, a, bm) // warm the pack pool
		res := bestOf3(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mat.Mul(dst, a, bm)
			}
		})
		flops := 2 * float64(sh.m) * float64(sh.k) * float64(sh.n)
		entries = append(entries, perfEntry{
			Name:        sh.name,
			NsPerOp:     float64(res.NsPerOp()),
			AllocsPerOp: res.AllocsPerOp(),
			GFlops:      flops / float64(res.NsPerOp()),
		})
	}
	return entries, nil
}

// measureLint benchmarks a cold whole-repo lint run — module load,
// type-check, suppression collection, and every toolchain-free analyzer —
// with the interprocedural summary layer on (the shipped default) and off
// (the spread is the layer's measured cost). One iteration is around a
// second, so each bestOf3 round runs the suite once. The compiler-backed
// analyzers are excluded here: they would fold a multi-second `go build`
// into every iteration and drown the signal; their toolchain cost is
// measured on its own as Lint/compilerfacts.
func measureLint() ([]perfEntry, error) {
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		return nil, fmt.Errorf("lint: %v", err)
	}
	var coldAnalyzers []*analysis.Analyzer
	for _, a := range analysis.Analyzers() {
		if !a.NeedsBuild {
			coldAnalyzers = append(coldAnalyzers, a)
		}
	}
	var entries []perfEntry
	for _, cfg := range []struct {
		name     string
		noInterp bool
	}{
		{"Lint/interprocedural", false},
		{"Lint/intraprocedural", true},
	} {
		cfg := cfg
		var failed error
		res := bestOf3(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, err := analysis.LoadModule(root)
				if err != nil {
					failed = err
					b.FailNow()
				}
				m.NoInterp = cfg.noInterp
				sup := analysis.CollectSuppressions(m)
				for _, a := range coldAnalyzers {
					if kept := analysis.FilterSuppressed(a.Run(m), sup); len(kept) > 0 {
						failed = fmt.Errorf("repo not lint-clean: %s", kept[0])
						b.FailNow()
					}
				}
			}
		})
		if failed != nil {
			return nil, fmt.Errorf("lint %s: %v", cfg.name, failed)
		}
		entries = append(entries, perfEntry{
			Name:        cfg.name,
			NsPerOp:     float64(res.NsPerOp()),
			AllocsPerOp: res.AllocsPerOp(),
		})
	}

	warmInc, err := measureLintCached(root)
	if err != nil {
		return nil, err
	}
	return append(entries, warmInc...), nil
}

// lintWarmBudgetNs is the absolute acceptance budget for a cache-warm
// whole-repo lint: 200ms. In practice a warm run is ~15ms (a scan plus
// entry reads — nothing is parsed or type-checked), so the gate only trips
// when the warm path stops being warm.
const lintWarmBudgetNs = 200e6

// lintFactsBudgetNs is the absolute ceiling for one uncached compiler-facts
// computation: 60s. The measurement is almost entirely `go build` with the
// noisy escape/inline diagnostics on (~7s on the reference machine, paid
// once per (go version, GOARCH, flags, tree) and then replayed from the
// persistent cache), so the budget is a runaway guard, not a perf target.
const lintFactsBudgetNs = 60e9

// measureLintCached benchmarks the persistent-cache paths:
//
//   - Lint/warm: a fully warm run over an unchanged tree (every package
//     replays from its cache entry), gated by the absolute 200ms budget;
//   - Lint/incremental: one leaf-command file is touched before every run,
//     so each iteration re-analyzes exactly that package (and materializes
//     its import closure for type information) while everything else hits.
//   - Lint/compilerfacts: one uncached compiler-facts computation — the
//     `go build -gcflags=-m=2` pass the compiler-backed analyzers pay when
//     no persisted fact table matches the tree. It is dominated by the Go
//     toolchain, so it carries its own absolute budget and a wide relative
//     tolerance instead of the default 15% gate.
//
// All three operate on a disposable copy of the module so the benchmark
// never mutates the working tree or its cache.
func measureLintCached(root string) ([]perfEntry, error) {
	copyRoot, err := copyLintModule(root)
	if err != nil {
		return nil, fmt.Errorf("lint: copying module: %v", err)
	}
	defer os.RemoveAll(copyRoot)
	opts := analysis.RunOptions{Analyzers: analysis.Analyzers(), CacheDir: analysis.DefaultCacheDir(copyRoot)}
	if _, err := analysis.RunLint(copyRoot, opts); err != nil {
		return nil, fmt.Errorf("lint: seeding cache: %v", err)
	}

	var entries []perfEntry
	var failed error
	res := bestOf3(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := analysis.RunLint(copyRoot, opts); err != nil {
				failed = err
				b.FailNow()
			}
		}
	})
	if failed != nil {
		return nil, fmt.Errorf("lint Lint/warm: %v", failed)
	}
	entries = append(entries, perfEntry{
		Name:        "Lint/warm",
		NsPerOp:     float64(res.NsPerOp()),
		AllocsPerOp: res.AllocsPerOp(),
		BudgetNs:    lintWarmBudgetNs,
	})

	// The edited file lives in a leaf command package: the realistic
	// single-file edit whose reverse closure is just its own package.
	edited := filepath.Join(copyRoot, "cmd", "blocktri-solve", "main.go")
	gen := 0
	res = bestOf3(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			gen++
			src, err := os.ReadFile(edited)
			if err != nil {
				failed = err
				b.FailNow()
			}
			src = append(src, []byte(fmt.Sprintf("\n// edit %d\n", gen))...)
			if err := os.WriteFile(edited, src, 0o644); err != nil {
				failed = err
				b.FailNow()
			}
			b.StartTimer()
			if _, err := analysis.RunLint(copyRoot, opts); err != nil {
				failed = err
				b.FailNow()
			}
		}
	})
	if failed != nil {
		return nil, fmt.Errorf("lint Lint/incremental: %v", failed)
	}
	entries = append(entries, perfEntry{
		Name:        "Lint/incremental",
		NsPerOp:     float64(res.NsPerOp()),
		AllocsPerOp: res.AllocsPerOp(),
	})

	// One compiler-facts computation takes seconds, so each bestOf3 round
	// is a single toolchain invocation over the copy.
	res = bestOf3(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := analysis.ComputeCompilerFacts(copyRoot); err != nil {
				failed = err
				b.FailNow()
			}
		}
	})
	if failed != nil {
		return nil, fmt.Errorf("lint Lint/compilerfacts: %v", failed)
	}
	entries = append(entries, perfEntry{
		Name:        "Lint/compilerfacts",
		NsPerOp:     float64(res.NsPerOp()),
		AllocsPerOp: res.AllocsPerOp(),
		BudgetNs:    lintFactsBudgetNs,
		Tol:         2.0,
	})
	return entries, nil
}

// copyLintModule copies the lintable slice of the module — go.mod and every
// .go and .s file outside skipped trees — into a fresh temp directory. The
// assembly files matter twice over: asmcheck verifies them against their Go
// stubs, and the compiler-facts pass runs `go build` on the copy, which
// cannot compile the kernel packages without their .s bodies.
func copyLintModule(root string) (string, error) {
	dst, err := os.MkdirTemp("", "blocktri-lint-perf-")
	if err != nil {
		return "", err
	}
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path == root {
				return nil
			}
			if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				return filepath.SkipDir
			}
			switch name {
			case "testdata", "vendor", "results", "reports", "docs", "scripts":
				return filepath.SkipDir
			}
			return nil
		}
		keep := name == "go.mod" || strings.HasSuffix(name, ".s") ||
			(strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go"))
		if !keep {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		out := filepath.Join(dst, rel)
		if err := os.MkdirAll(filepath.Dir(out), 0o755); err != nil {
			return err
		}
		return os.WriteFile(out, data, 0o644)
	})
	if err != nil {
		os.RemoveAll(dst)
		return "", err
	}
	return dst, nil
}

// perfSuites lists the measured suites and their baseline files. gateAllocs
// applies the zero-tolerance allocs/op gate; the solver suites use it to
// pin the arena discipline, while the lint suite is time-gated only.
var perfSuites = []struct {
	suite      string
	file       string
	measure    func() ([]perfEntry, error)
	gateAllocs bool
}{
	{"ard_solve", "BENCH_ard_solve.json", measureARDSolve, true},
	{"gemm", "BENCH_gemm.json", measureGEMM, true},
	{"lint", "BENCH_lint.json", measureLint, false},
	{"serve", "BENCH_serve.json", measureServe, false},
}

// runPerf executes the harness in the given mode ("baseline" or "compare")
// and returns a process exit code. suites, when non-empty, is a
// comma-separated subset of suite names to run; unknown names are an error
// so a typo cannot silently skip a gate.
func runPerf(mode, dir, suites string) int {
	// Parallel GEMM fan-out on a loaded CI machine adds noise without
	// changing what the gate protects (the serial kernels and the arena
	// discipline), so the harness pins it off, like the Benchmark* suite.
	prev := mat.ParallelEnabled()
	mat.SetParallel(false)
	defer mat.SetParallel(prev)

	switch mode {
	case "baseline", "compare":
	default:
		fmt.Fprintf(os.Stderr, "blocktri-bench: unknown -perf mode %q (want baseline or compare)\n", mode)
		return 2
	}

	selected := perfSuites
	if suites != "" {
		known := make(map[string]bool, len(perfSuites))
		for _, s := range perfSuites {
			known[s.suite] = true
		}
		want := make(map[string]bool)
		for _, name := range strings.Split(suites, ",") {
			name = strings.TrimSpace(name)
			if !known[name] {
				fmt.Fprintf(os.Stderr, "blocktri-bench: unknown -perf-suite %q\n", name)
				return 2
			}
			want[name] = true
		}
		selected = nil
		for _, s := range perfSuites {
			if want[s.suite] {
				selected = append(selected, s)
			}
		}
	}

	failed := false
	for _, s := range selected {
		entries, err := s.measure()
		if err != nil {
			fmt.Fprintf(os.Stderr, "blocktri-bench: perf %s: %v\n", s.suite, err)
			return 1
		}
		path := filepath.Join(dir, s.file)
		if mode == "baseline" {
			out := perfSuite{Schema: perfSchema, Suite: s.suite, Entries: entries}
			data, err := json.MarshalIndent(out, "", "  ")
			if err != nil {
				fmt.Fprintf(os.Stderr, "blocktri-bench: perf %s: %v\n", s.suite, err)
				return 1
			}
			if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "blocktri-bench: perf %s: %v\n", s.suite, err)
				return 1
			}
			fmt.Printf("wrote %s (%d entries)\n", path, len(entries))
			for _, e := range entries {
				fmt.Printf("  %-16s %12.0f ns/op %6d allocs/op %8.3f GFLOP/s\n",
					e.Name, e.NsPerOp, e.AllocsPerOp, e.GFlops)
			}
			continue
		}
		base, err := loadPerfSuite(path, s.suite)
		if err != nil {
			fmt.Fprintf(os.Stderr, "blocktri-bench: perf %s: %v (run -perf baseline first)\n", s.suite, err)
			return 1
		}
		if bad := comparePerf(base, entries, s.gateAllocs); len(bad) > 0 {
			// One retry before declaring a regression: a loaded CI machine
			// can push a short benchmark past the gate on scheduling noise
			// alone. Entries are gated independently across the two rounds —
			// only an entry that regresses in BOTH fails, so one entry
			// flapping on noise in either round cannot fail the suite while
			// a real regression, which fails every round, still does.
			fmt.Printf("  %s: gate failed (%s), re-measuring once\n",
				s.suite, strings.Join(bad, ", "))
			entries, err = s.measure()
			if err != nil {
				fmt.Fprintf(os.Stderr, "blocktri-bench: perf %s: %v\n", s.suite, err)
				return 1
			}
			bad2 := comparePerf(base, entries, s.gateAllocs)
			firstRound := make(map[string]bool, len(bad))
			for _, name := range bad {
				firstRound[name] = true
			}
			for _, name := range bad2 {
				if firstRound[name] {
					failed = true
				}
			}
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "blocktri-bench: perf compare FAILED")
		return 1
	}
	if mode == "compare" {
		fmt.Println("perf compare OK")
	}
	return 0
}

// loadPerfSuite reads and validates a baseline file.
func loadPerfSuite(path, suite string) (perfSuite, error) {
	var s perfSuite
	data, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("%s: %v", path, err)
	}
	if s.Schema != perfSchema {
		return s, fmt.Errorf("%s: schema %q, want %q", path, s.Schema, perfSchema)
	}
	if s.Suite != suite {
		return s, fmt.Errorf("%s: suite %q, want %q", path, s.Suite, suite)
	}
	return s, nil
}

// comparePerf gates current entries against the baseline: ns/op may not
// regress by more than the entry's tolerance (perfRegressionTol unless the
// baseline entry overrides it), and — when gateAllocs is set — allocs/op
// may not increase at all. It returns the names of the entries that failed;
// entries missing from the baseline are reported informationally.
func comparePerf(base perfSuite, cur []perfEntry, gateAllocs bool) []string {
	byName := make(map[string]perfEntry, len(base.Entries))
	for _, e := range base.Entries {
		byName[e.Name] = e
	}
	var bad []string
	for _, e := range cur {
		b, found := byName[e.Name]
		if !found {
			fmt.Printf("  %-16s %12.0f ns/op (no baseline)\n", e.Name, e.NsPerOp)
			continue
		}
		ratio := e.NsPerOp / b.NsPerOp
		// The tolerance lives in the committed baseline entry so the gate's
		// width is reviewed like any other numeric change.
		tol := perfRegressionTol
		if b.Tol > 0 {
			tol = b.Tol
		}
		status := "ok"
		if ratio > 1+tol {
			status = fmt.Sprintf("REGRESSION (+%.0f%% > %.0f%%)", 100*(ratio-1), 100*tol)
		}
		if gateAllocs && e.AllocsPerOp > b.AllocsPerOp {
			status = fmt.Sprintf("ALLOC REGRESSION (%d > %d)", e.AllocsPerOp, b.AllocsPerOp)
		}
		// The absolute ceiling is in the committed baseline, so a noisy
		// re-baseline cannot quietly relax it.
		if b.BudgetNs > 0 && e.NsPerOp > b.BudgetNs {
			status = fmt.Sprintf("BUDGET EXCEEDED (%.1fms > %.0fms)", e.NsPerOp/1e6, b.BudgetNs/1e6)
		}
		if status != "ok" {
			bad = append(bad, e.Name)
		}
		fmt.Printf("  %-16s %12.0f ns/op (base %12.0f, %+5.1f%%) %6d allocs  %s\n",
			e.Name, e.NsPerOp, b.NsPerOp, 100*(ratio-1), e.AllocsPerOp, status)
	}
	return bad
}
