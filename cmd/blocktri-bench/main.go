// Command blocktri-bench regenerates the experiment tables and figures of
// the reproduction (E1..E13, see DESIGN.md for the index).
//
// Usage:
//
//	blocktri-bench -exp E1          # one experiment
//	blocktri-bench -exp all         # the full suite
//	blocktri-bench -exp E3 -quick   # shrunken sizes for a fast smoke run
//	blocktri-bench -exp E1 -csv out # also write out/E1-*.csv
//
// The perf-regression harness (see perf.go) lives behind -perf:
//
//	blocktri-bench -perf baseline             # (re)write BENCH_*.json baselines
//	blocktri-bench -perf compare              # re-measure, exit 1 on regression
//	blocktri-bench -perf baseline -perf-suite serve   # one suite only
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"blocktri/internal/harness"
)

func main() {
	exp := flag.String("exp", "all", "experiment ID (E1..E13) or 'all'")
	quick := flag.Bool("quick", false, "shrink problem sizes for a fast run")
	csvDir := flag.String("csv", "", "directory to also write CSV tables into")
	list := flag.Bool("list", false, "list available experiments and exit")
	perfMode := flag.String("perf", "", "perf harness mode: 'baseline' or 'compare'")
	perfDir := flag.String("perf-dir", ".", "directory holding the BENCH_*.json baselines")
	perfSuite := flag.String("perf-suite", "", "comma-separated suite subset for -perf (default: all)")
	flag.Parse()

	if *perfMode != "" {
		os.Exit(runPerf(*perfMode, *perfDir, *perfSuite))
	}

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	var toRun []harness.Experiment
	if strings.EqualFold(*exp, "all") {
		toRun = harness.Experiments()
	} else {
		e, ok := harness.Find(strings.ToUpper(*exp))
		if !ok {
			fmt.Fprintf(os.Stderr, "blocktri-bench: unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		toRun = []harness.Experiment{e}
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "blocktri-bench: %v\n", err)
			os.Exit(1)
		}
	}

	fmt.Printf("environment: %s\n", harness.Environment())
	for _, e := range toRun {
		fmt.Printf("\n########## %s: %s ##########\n", e.ID, e.Title)
		tables, err := e.Run(*quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "blocktri-bench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		for i, t := range tables {
			t.Render(os.Stdout)
			if *csvDir != "" {
				name := fmt.Sprintf("%s-%d.csv", e.ID, i)
				f, err := os.Create(filepath.Join(*csvDir, name))
				if err != nil {
					fmt.Fprintf(os.Stderr, "blocktri-bench: %v\n", err)
					os.Exit(1)
				}
				t.RenderCSV(f)
				if err := f.Close(); err != nil {
					fmt.Fprintf(os.Stderr, "blocktri-bench: %v\n", err)
					os.Exit(1)
				}
			}
		}
	}
}
