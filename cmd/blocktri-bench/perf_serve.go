// Serve-suite perf measurements: the warm-factor path of the solver
// service. Once a matrix's factorization is cache-resident, a Submit is
// admission + worker handoff + a BLAS-3 panel solve; this suite pins both
// the mean cost of that path (throughput) and its tail (p99 latency) so a
// scheduling or caching regression in internal/serve fails CI even when
// the solver kernels underneath are unchanged.
package main

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"blocktri/internal/serve"
	"blocktri/internal/workload"
)

// Every Submit crosses goroutine handoffs (submitter, admission, worker,
// wake), so on a busy or single-core machine both entries carry scheduler
// noise the solver suites never see: a ±50% swing between clean runs is
// normal. The gates are therefore wide relatively and hard absolutely — a
// structural regression (a request hitting the cold factor path, a stalled
// queue, a lost wakeup) costs a multiple, not a percentage.
const (
	// serveP99Samples is the per-round sample count for the tail measurement.
	serveP99Samples = 200
	// serveP99Rounds is how many p99 rounds the median runs over.
	serveP99Rounds = 5
	// serveWarmTol / serveWarmBudgetNs gate the warm mean: up to +50%
	// relative, 500µs absolute.
	serveWarmTol      = 0.5
	serveWarmBudgetNs = 5e5
	// serveP99Tol / serveP99BudgetNs gate the tail: up to +100% relative,
	// 1ms absolute — a warm single-RHS solve whose tail reaches a
	// millisecond has stopped being warm.
	serveP99Tol      = 1.0
	serveP99BudgetNs = 1e6
)

// measureServe benchmarks warm-factor Submits against a live server at a
// service-plausible shape (N=64, M=8, P=2, single-RHS requests).
//
//   - Serve/warm-solve: mean ns per warm single-RHS Submit (best of three
//     testing.Benchmark runs); 1e9/ns_per_op is the warm throughput floor.
//   - Serve/warm-p99: 99th-percentile Submit latency over 200 sequential
//     requests, median of five rounds. Tails carry scheduler noise a mean
//     never sees, so the entry is gated wide relatively (serveP99Tol) and
//     hard absolutely (serveP99BudgetNs): a tail that doubles on noise
//     passes, a tail that reaches milliseconds — a stalled queue, a lost
//     wakeup — fails.
//
// Allocations are not gated: the service allocates per request by design
// (task, result, context); only the solver underneath is arena-backed.
func measureServe() ([]perfEntry, error) {
	srv := serve.New(serve.Config{P: 2, QueueDepth: 256, MaxPanel: 64})
	defer srv.Close()

	a := workload.Build(workload.Oscillatory, 64, 8, 1)
	if err := srv.Register("bench", a); err != nil {
		return nil, fmt.Errorf("serve: register: %v", err)
	}
	rhs := a.RandomRHS(1, rand.New(rand.NewSource(3)))
	submit := func() error {
		_, err := srv.Submit(context.Background(), serve.Job{
			Tenant: "bench", MatrixID: "bench", B: rhs,
		})
		return err
	}
	if err := submit(); err != nil { // factor once so every timed Submit is warm
		return nil, fmt.Errorf("serve: warmup solve: %v", err)
	}

	var failed error
	res := bestOf3(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := submit(); err != nil {
				failed = err
				b.FailNow()
			}
		}
	})
	if failed != nil {
		return nil, fmt.Errorf("serve: warm solve: %v", failed)
	}
	entries := []perfEntry{{
		Name:        "Serve/warm-solve",
		NsPerOp:     float64(res.NsPerOp()),
		AllocsPerOp: res.AllocsPerOp(),
		Tol:         serveWarmTol,
		BudgetNs:    serveWarmBudgetNs,
	}}

	p99s := make([]time.Duration, serveP99Rounds)
	for round := range p99s {
		lat := make([]time.Duration, serveP99Samples)
		for i := range lat {
			start := time.Now()
			if err := submit(); err != nil {
				return nil, fmt.Errorf("serve: p99 sample: %v", err)
			}
			lat[i] = time.Since(start)
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		p99s[round] = lat[serveP99Samples*99/100]
	}
	sort.Slice(p99s, func(i, j int) bool { return p99s[i] < p99s[j] })
	return append(entries, perfEntry{
		Name:     "Serve/warm-p99",
		NsPerOp:  float64(p99s[serveP99Rounds/2]),
		Tol:      serveP99Tol,
		BudgetNs: serveP99BudgetNs,
	}), nil
}
