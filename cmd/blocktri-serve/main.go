// Command blocktri-serve is the multi-tenant solver service daemon: an
// HTTP front end over internal/serve. Matrices are registered once and
// solved many times against cached ARD factorizations; requests against
// the same matrix are coalesced into multi-RHS panels.
//
// Usage:
//
//	blocktri-serve -addr :8095 -p 4
//
// API (JSON bodies throughout):
//
//	POST /v1/matrices/{id}   register a matrix under an id
//	POST /v1/solve           solve: {"tenant", "matrix_id"|"matrix", "b", "deadline_ms"}
//	GET  /v1/stats           service counters
//	GET  /healthz            liveness
//
// Overload and breaker rejections map to 503 with a Retry-After header;
// deadline misses map to 504; structural errors map to 400/404. The
// daemon drains in-flight work on SIGINT/SIGTERM.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"blocktri/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8095", "listen address")
	p := flag.Int("p", 2, "ranks per solver world")
	workers := flag.Int("workers", 1, "solver workers (worlds)")
	cacheMB := flag.Int64("cache-mb", 256, "factor cache budget in MiB")
	queue := flag.Int("queue", 256, "admission queue depth before shedding")
	maxPanel := flag.Int("max-panel", 256, "max coalesced right-hand-side columns per solve")
	deadline := flag.Duration("deadline", 30*time.Second, "default per-request deadline")
	seed := flag.Int64("seed", 1, "seed for retry jitter")
	flag.Parse()

	srv := serve.New(serve.Config{
		Workers:         *workers,
		P:               *p,
		CacheBytes:      *cacheMB << 20,
		QueueDepth:      *queue,
		MaxPanel:        *maxPanel,
		DefaultDeadline: *deadline,
		Seed:            *seed,
	})
	hs := &http.Server{Addr: *addr, Handler: newHandler(srv)}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("blocktri-serve: listening on %s (P=%d workers=%d)", *addr, *p, *workers)

	select {
	case err := <-errc:
		srv.Close()
		log.Fatalf("blocktri-serve: %v", err)
	case <-ctx.Done():
	}
	log.Print("blocktri-serve: draining")
	shctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(shctx); err != nil {
		log.Printf("blocktri-serve: shutdown: %v", err)
	}
	srv.Close()
}
