// HTTP handler and JSON wire types for blocktri-serve. Split from main so
// tests can drive the full request path through httptest without a socket.
package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"time"

	"blocktri/internal/blocktri"
	"blocktri/internal/mat"
	"blocktri/internal/serve"
)

// matrixJSON is the wire form of a block tridiagonal matrix: N block rows
// of M x M blocks, each block flattened row-major. diag has N blocks,
// lower N-1 (block rows 1..N-1), upper N-1 (block rows 0..N-2).
type matrixJSON struct {
	N     int         `json:"n"`
	M     int         `json:"m"`
	Lower [][]float64 `json:"lower"`
	Diag  [][]float64 `json:"diag"`
	Upper [][]float64 `json:"upper"`
}

// toMatrix validates and converts the wire form.
func (mj *matrixJSON) toMatrix() (*blocktri.Matrix, error) {
	if mj.N < 1 || mj.M < 1 {
		return nil, fmt.Errorf("invalid dimensions n=%d m=%d", mj.N, mj.M)
	}
	if len(mj.Diag) != mj.N || len(mj.Lower) != mj.N-1 || len(mj.Upper) != mj.N-1 {
		return nil, fmt.Errorf("band lengths diag=%d lower=%d upper=%d, want %d/%d/%d",
			len(mj.Diag), len(mj.Lower), len(mj.Upper), mj.N, mj.N-1, mj.N-1)
	}
	a := blocktri.New(mj.N, mj.M)
	fill := func(dst *mat.Matrix, src []float64, band string, i int) error {
		if len(src) != mj.M*mj.M {
			return fmt.Errorf("%s block %d has %d entries, want %d", band, i, len(src), mj.M*mj.M)
		}
		copy(dst.Data, src)
		return nil
	}
	for i := 0; i < mj.N; i++ {
		if err := fill(a.Diag[i], mj.Diag[i], "diag", i); err != nil {
			return nil, err
		}
		if i > 0 {
			if err := fill(a.Lower[i], mj.Lower[i-1], "lower", i-1); err != nil {
				return nil, err
			}
		}
		if i < mj.N-1 {
			if err := fill(a.Upper[i], mj.Upper[i], "upper", i); err != nil {
				return nil, err
			}
		}
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// solveRequest is one solve call. Exactly one of matrix_id / matrix names
// the system; b is the right-hand side as a list of columns, each of
// length N*M.
type solveRequest struct {
	Tenant     string      `json:"tenant"`
	MatrixID   string      `json:"matrix_id"`
	Matrix     *matrixJSON `json:"matrix"`
	B          [][]float64 `json:"b"`
	DeadlineMs int64       `json:"deadline_ms"`
}

// solveResponse mirrors serve.Result with x as a list of columns.
type solveResponse struct {
	X         [][]float64 `json:"x"`
	Warm      bool        `json:"warm"`
	Coalesced int         `json:"coalesced"`
	Boosted   bool        `json:"boosted"`
	Retries   int         `json:"retries"`
	WallNs    int64       `json:"wall_ns"`
}

type errorResponse struct {
	Error string `json:"error"`
}

type handler struct {
	srv *serve.Server
}

func newHandler(srv *serve.Server) http.Handler {
	h := &handler{srv: srv}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/matrices/{id}", h.register)
	mux.HandleFunc("POST /v1/solve", h.solve)
	mux.HandleFunc("GET /v1/stats", h.stats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	return mux
}

func (h *handler) register(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var mj matrixJSON
	if err := json.NewDecoder(r.Body).Decode(&mj); err != nil {
		writeJSONError(w, http.StatusBadRequest, fmt.Errorf("decoding matrix: %w", err))
		return
	}
	a, err := mj.toMatrix()
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err)
		return
	}
	if err := h.srv.Register(id, a); err != nil {
		writeServeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"id": id})
}

func (h *handler) solve(w http.ResponseWriter, r *http.Request) {
	var req solveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSONError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if len(req.B) == 0 {
		writeJSONError(w, http.StatusBadRequest, errors.New("missing right-hand side b"))
		return
	}
	rows := len(req.B[0])
	b := mat.New(rows, len(req.B))
	for j, col := range req.B {
		if len(col) != rows {
			writeJSONError(w, http.StatusBadRequest,
				fmt.Errorf("b column %d has %d rows, want %d", j, len(col), rows))
			return
		}
		for i, v := range col {
			b.Data[i*b.Stride+j] = v
		}
	}
	job := serve.Job{Tenant: req.Tenant, MatrixID: req.MatrixID, B: b}
	if req.Matrix != nil {
		a, err := req.Matrix.toMatrix()
		if err != nil {
			writeJSONError(w, http.StatusBadRequest, err)
			return
		}
		job.Matrix = a
	}
	if req.DeadlineMs > 0 {
		job.Deadline = time.Now().Add(time.Duration(req.DeadlineMs) * time.Millisecond)
	}
	res, err := h.srv.Submit(r.Context(), job)
	if err != nil {
		writeServeError(w, err)
		return
	}
	resp := solveResponse{
		X:         make([][]float64, res.X.Cols),
		Warm:      res.Warm,
		Coalesced: res.Coalesced,
		Boosted:   res.Boosted,
		Retries:   res.Retries,
		WallNs:    int64(res.Wall),
	}
	for j := range resp.X {
		col := make([]float64, res.X.Rows)
		for i := range col {
			col[i] = res.X.Data[i*res.X.Stride+j]
		}
		resp.X[j] = col
	}
	writeJSON(w, http.StatusOK, resp)
}

func (h *handler) stats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, h.srv.Stats())
}

// writeServeError maps the serve error ladder onto HTTP: overload and open
// breakers are 503 with a Retry-After hint, deadline misses are 504,
// structural problems 400/404, everything else 500.
func writeServeError(w http.ResponseWriter, err error) {
	var oe *serve.OverloadError
	var ce *serve.CircuitError
	switch {
	case errors.As(err, &oe):
		w.Header().Set("Retry-After", retryAfterSeconds(oe.RetryAfter))
		writeJSONError(w, http.StatusServiceUnavailable, err)
	case errors.As(err, &ce):
		w.Header().Set("Retry-After", retryAfterSeconds(ce.RetryAfter))
		writeJSONError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, serve.ErrDeadlineExceeded):
		writeJSONError(w, http.StatusGatewayTimeout, err)
	case errors.Is(err, serve.ErrCanceled):
		// Client went away; 499 is the de-facto code for that.
		writeJSONError(w, 499, err)
	case errors.Is(err, serve.ErrUnknownMatrix):
		writeJSONError(w, http.StatusNotFound, err)
	case errors.Is(err, serve.ErrBadRequest):
		writeJSONError(w, http.StatusBadRequest, err)
	case errors.Is(err, serve.ErrClosed):
		writeJSONError(w, http.StatusServiceUnavailable, err)
	default:
		writeJSONError(w, http.StatusInternalServerError, err)
	}
}

// retryAfterSeconds renders a duration as the integral seconds Retry-After
// wants, rounding up so "soon" never becomes "now".
func retryAfterSeconds(d time.Duration) string {
	s := int64((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return strconv.FormatInt(s, 10)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("blocktri-serve: encoding response: %v", err)
	}
}

func writeJSONError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}
