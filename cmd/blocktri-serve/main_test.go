package main

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"blocktri/internal/blocktri"
	"blocktri/internal/mat"
	"blocktri/internal/serve"
)

// toWire converts a matrix into its JSON wire form.
func toWire(a *blocktri.Matrix) *matrixJSON {
	mj := &matrixJSON{N: a.N, M: a.M}
	block := func(b *mat.Matrix) []float64 {
		out := make([]float64, a.M*a.M)
		copy(out, b.Data)
		return out
	}
	for i := 0; i < a.N; i++ {
		mj.Diag = append(mj.Diag, block(a.Diag[i]))
		if i > 0 {
			mj.Lower = append(mj.Lower, block(a.Lower[i]))
		}
		if i < a.N-1 {
			mj.Upper = append(mj.Upper, block(a.Upper[i]))
		}
	}
	return mj
}

func newTestServer(t *testing.T) (*httptest.Server, *serve.Server) {
	t.Helper()
	srv := serve.New(serve.Config{P: 2, QueueDepth: 16})
	ts := httptest.NewServer(newHandler(srv))
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts, srv
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return v
}

func TestHTTPRegisterAndSolve(t *testing.T) {
	ts, _ := newTestServer(t)
	rng := rand.New(rand.NewSource(42))
	a := blocktri.RandomDiagDominant(6, 2, rng)

	resp := postJSON(t, ts.URL+"/v1/matrices/poisson", toWire(a))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	b := a.RandomRHS(2, rng)
	req := solveRequest{Tenant: "alice", MatrixID: "poisson", DeadlineMs: 30000}
	for j := 0; j < b.Cols; j++ {
		col := make([]float64, b.Rows)
		for i := range col {
			col[i] = b.Data[i*b.Stride+j]
		}
		req.B = append(req.B, col)
	}
	resp = postJSON(t, ts.URL+"/v1/solve", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: status %d", resp.StatusCode)
	}
	sr := decodeBody[solveResponse](t, resp)
	if len(sr.X) != b.Cols {
		t.Fatalf("got %d solution columns, want %d", len(sr.X), b.Cols)
	}
	x := mat.New(b.Rows, b.Cols)
	for j, col := range sr.X {
		for i, v := range col {
			x.Data[i*x.Stride+j] = v
		}
	}
	if r := a.RelResidual(x, b); r > 1e-7 {
		t.Fatalf("residual %.3e > 1e-7", r)
	}

	// A second solve against the same id must hit the warm factor.
	resp = postJSON(t, ts.URL+"/v1/solve", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm solve: status %d", resp.StatusCode)
	}
	if sr := decodeBody[solveResponse](t, resp); !sr.Warm {
		t.Fatal("second solve against registered matrix was not warm")
	}
}

func TestHTTPInlineMatrixSolve(t *testing.T) {
	ts, _ := newTestServer(t)
	rng := rand.New(rand.NewSource(7))
	a := blocktri.RandomDiagDominant(5, 1, rng)
	b := a.RandomRHS(1, rng)
	req := solveRequest{Tenant: "bob", Matrix: toWire(a)}
	col := make([]float64, b.Rows)
	for i := range col {
		col[i] = b.Data[i*b.Stride]
	}
	req.B = [][]float64{col}
	resp := postJSON(t, ts.URL+"/v1/solve", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("inline solve: status %d", resp.StatusCode)
	}
	sr := decodeBody[solveResponse](t, resp)
	x := mat.New(b.Rows, 1)
	copy(x.Data, sr.X[0])
	if r := a.RelResidual(x, b); r > 1e-7 {
		t.Fatalf("residual %.3e > 1e-7", r)
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	ts, srv := newTestServer(t)

	// Unknown matrix id -> 404.
	resp := postJSON(t, ts.URL+"/v1/solve",
		solveRequest{Tenant: "a", MatrixID: "nope", B: [][]float64{{1, 2}}})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown matrix: status %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()

	// Missing b -> 400.
	resp = postJSON(t, ts.URL+"/v1/solve", solveRequest{Tenant: "a", MatrixID: "nope"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing b: status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	// Malformed JSON -> 400.
	mresp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	if mresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d, want 400", mresp.StatusCode)
	}
	mresp.Body.Close()

	// Ragged matrix blocks -> 400.
	resp = postJSON(t, ts.URL+"/v1/matrices/bad", &matrixJSON{
		N: 2, M: 1, Diag: [][]float64{{1}, {1, 2}}, Lower: [][]float64{{0}}, Upper: [][]float64{{0}},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("ragged blocks: status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	// Closed server -> 503. Register first so admission, not matrix
	// resolution, is what rejects.
	rng := rand.New(rand.NewSource(3))
	a := blocktri.RandomDiagDominant(4, 1, rng)
	resp = postJSON(t, ts.URL+"/v1/matrices/x", toWire(a))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	srv.Close()
	resp = postJSON(t, ts.URL+"/v1/solve",
		solveRequest{Tenant: "a", MatrixID: "x", B: [][]float64{{1, 2, 3, 4}}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("closed server: status %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestHTTPStatsAndHealth(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatalf("GET /v1/stats: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: status %d", resp.StatusCode)
	}
	stats := decodeBody[map[string]any](t, resp)
	if len(stats) == 0 {
		t.Fatal("stats response was empty")
	}
}

func TestRetryAfterHeader(t *testing.T) {
	rec := httptest.NewRecorder()
	writeServeError(rec, &serve.OverloadError{Queued: 9, RetryAfter: 1500 * time.Millisecond})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("overload: status %d, want 503", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "2" {
		t.Fatalf("Retry-After = %q, want %q (1.5s rounds up)", got, "2")
	}

	rec = httptest.NewRecorder()
	writeServeError(rec, &serve.CircuitError{Key: "k", Failures: 3, RetryAfter: 100 * time.Millisecond})
	if got := rec.Header().Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want %q (floor is one second)", got, "1")
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{0, "1"},
		{time.Second, "1"},
		{time.Second + time.Millisecond, "2"},
		{5 * time.Second, "5"},
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.d); got != c.want {
			t.Errorf("retryAfterSeconds(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}
