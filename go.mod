module blocktri

go 1.22
